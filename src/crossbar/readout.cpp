#include "crossbar/readout.h"

#include <cmath>

#include "common/error.h"
#include "crossbar/selector.h"

namespace memcim {

void program_worst_case_pattern(CrossbarArray& array, std::size_t r,
                                std::size_t c, bool target_lrs) {
  for (std::size_t i = 0; i < array.rows(); ++i)
    for (std::size_t j = 0; j < array.cols(); ++j)
      array.store_bit(i, j, true);
  array.store_bit(r, c, target_lrs);
}

void configure_transistor_gates(CrossbarArray& array, std::size_t r,
                                std::size_t c) {
  for (std::size_t i = 0; i < array.rows(); ++i)
    for (std::size_t j = 0; j < array.cols(); ++j)
      if (auto* t = dynamic_cast<TransistorDevice*>(&array.device(i, j)))
        t->set_gate(i == r && j == c);
}

namespace {

struct SenseSample {
  Current column;  ///< current flowing out into the grounded column
  Current source;  ///< current delivered by the selected row driver
};

SenseSample sense_column(const CrossbarArray& array, std::size_t r,
                         std::size_t c, const ReadConfig& config) {
  const LineBias bias = access_bias(array.rows(), array.cols(), r, c,
                                    config.v_read, config.scheme);
  const CrossbarSolution sol = array.solve(bias);
  // Positive current flows out of the array into the grounded column.
  return {Current(-sol.col_terminal_current[c]),
          Current(sol.row_terminal_current[r])};
}

}  // namespace

ReadMeasurement measure_read_margin(CrossbarArray& array, std::size_t r,
                                    std::size_t c, const ReadConfig& config) {
  configure_transistor_gates(array, r, c);
  ReadMeasurement meas;
  program_worst_case_pattern(array, r, c, /*target_lrs=*/true);
  const SenseSample lrs = sense_column(array, r, c, config);
  meas.i_lrs = lrs.column;
  meas.i_source_lrs = lrs.source;
  program_worst_case_pattern(array, r, c, /*target_lrs=*/false);
  meas.i_hrs = sense_column(array, r, c, config).column;
  MEMCIM_CHECK_MSG(meas.i_lrs.value() > 0.0,
                   "sensed LRS current must be positive — check bias setup");
  meas.on_off_ratio = meas.i_lrs.value() / meas.i_hrs.value();
  meas.margin = (meas.i_lrs.value() - meas.i_hrs.value()) / meas.i_lrs.value();
  return meas;
}

bool read_bit(const CrossbarArray& array, std::size_t r, std::size_t c,
              const ReadConfig& config, const ReadMeasurement& reference) {
  const Current sensed = sense_column(array, r, c, config).column;
  const double threshold =
      std::sqrt(reference.i_lrs.value() *
                std::max(reference.i_hrs.value(), 1e-18));
  return sensed.value() >= threshold;
}

WriteResult write_bit(CrossbarArray& array, std::size_t r, std::size_t c,
                      bool bit, const WriteConfig& config) {
  const std::size_t m = array.rows(), n = array.cols();
  std::vector<double> before(m * n);
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = 0; j < n; ++j)
      before[i * n + j] = array.device(i, j).state();
  const Energy e_before = array.total_device_energy();

  const Voltage amplitude =
      bit ? config.v_write : Voltage(-config.v_write.value());
  const LineBias bias = access_bias(m, n, r, c, amplitude, config.scheme);
  (void)array.apply_pulse(bias, config.pulse);

  WriteResult result;
  result.success = array.device(r, c).is_lrs() == bit;
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = 0; j < n; ++j) {
      if (i == r && j == c) continue;
      result.max_disturb =
          std::max(result.max_disturb,
                   std::abs(array.device(i, j).state() - before[i * n + j]));
    }
  result.array_energy = array.total_device_energy() - e_before;
  return result;
}

MultistageReadResult multistage_read_bit(CrossbarArray& array, std::size_t r,
                                         std::size_t c,
                                         const ReadConfig& config,
                                         const WriteConfig& write_config,
                                         double decision_threshold) {
  MultistageReadResult result;
  // Stage 1: sense as stored.
  const double i_initial = sense_column(array, r, c, config).column.value();
  // Stage 2: write the cell to LRS and sense the self-reference.  The
  // background (sneak paths, half-select leaks) is identical in both
  // stages, so the ratio isolates the cell.
  (void)write_bit(array, r, c, true, write_config);
  ++result.extra_pulses;
  const double i_reference = sense_column(array, r, c, config).column.value();
  MEMCIM_CHECK_MSG(i_reference > 0.0, "multistage reference current <= 0");
  result.relative_drop = 1.0 - i_initial / i_reference;
  result.bit = result.relative_drop < decision_threshold;
  // Stage 3: restore when the cell had been HRS.
  if (!result.bit) {
    (void)write_bit(array, r, c, false, write_config);
    ++result.extra_pulses;
  }
  return result;
}

ProgramVerifyResult program_verify_write(CrossbarArray& array, std::size_t r,
                                         std::size_t c, bool bit,
                                         const WriteConfig& write_config,
                                         const ReadConfig& read_config,
                                         const ReadMeasurement& reference,
                                         std::size_t max_pulses) {
  MEMCIM_CHECK(max_pulses >= 1);
  ProgramVerifyResult result;
  const Energy e_before = array.total_device_energy();
  for (std::size_t pulse = 0; pulse < max_pulses; ++pulse) {
    ++result.verify_reads;
    if (read_bit(array, r, c, read_config, reference) == bit) {
      result.success = true;
      break;
    }
    (void)write_bit(array, r, c, bit, write_config);
    ++result.write_pulses;
  }
  if (!result.success) {
    ++result.verify_reads;
    result.success = read_bit(array, r, c, read_config, reference) == bit;
  }
  result.array_energy = array.total_device_energy() - e_before;
  return result;
}

double calibrate_multistage_threshold(CrossbarArray& array,
                                      const ReadConfig& config,
                                      const WriteConfig& write_config) {
  program_worst_case_pattern(array, 0, 0, /*target_lrs=*/false);
  // A negative threshold forces the HRS verdict so the restore stage
  // puts the probed cell back to HRS.
  const MultistageReadResult probe = multistage_read_bit(
      array, 0, 0, config, write_config, /*decision_threshold=*/-1.0);
  return probe.relative_drop / 2.0;
}

std::vector<MarginPoint> margin_vs_size(const Device& prototype,
                                        const CrossbarConfig& base_config,
                                        const ReadConfig& read,
                                        const std::vector<std::size_t>& sizes) {
  std::vector<MarginPoint> points;
  points.reserve(sizes.size());
  for (std::size_t n : sizes) {
    MEMCIM_CHECK(n >= 2);
    CrossbarConfig cfg = base_config;
    cfg.rows = n;
    cfg.cols = n;
    CrossbarArray array(cfg, prototype);
    const ReadMeasurement meas = measure_read_margin(array, 0, 0, read);
    points.push_back({n, meas.margin, meas.on_off_ratio});
  }
  return points;
}

std::size_t max_array_size(const Device& prototype,
                           const CrossbarConfig& base_config,
                           const ReadConfig& read,
                           const std::vector<std::size_t>& sizes,
                           double min_margin) {
  std::size_t best = 0;
  for (const MarginPoint& p :
       margin_vs_size(prototype, base_config, read, sizes))
    if (p.margin >= min_margin) best = std::max(best, p.size);
  return best;
}

}  // namespace memcim
