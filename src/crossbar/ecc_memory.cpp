#include "crossbar/ecc_memory.h"

#include "common/error.h"

namespace memcim {

namespace {

// Codeword layout (index 0..12): index 0 = overall parity; indices
// 1..12 are the classic Hamming positions, with parity bits at the
// powers of two (1, 2, 4, 8) and data bits at the remaining positions
// (3, 5, 6, 7, 9, 10, 11, 12).
constexpr std::size_t kDataPositions[8] = {3, 5, 6, 7, 9, 10, 11, 12};

bool parity_of_group(const std::array<bool, kEccCodewordBits>& cw,
                     std::size_t mask) {
  bool p = false;
  for (std::size_t pos = 1; pos <= 12; ++pos)
    if ((pos & mask) != 0 && cw[pos]) p = !p;
  return p;
}

}  // namespace

std::array<bool, kEccCodewordBits> ecc_encode(std::uint8_t data) {
  std::array<bool, kEccCodewordBits> cw{};
  for (std::size_t i = 0; i < 8; ++i)
    cw[kDataPositions[i]] = ((data >> i) & 1) != 0;
  // Hamming parities: each parity bit makes its mask-group even.
  for (std::size_t mask : {1u, 2u, 4u, 8u})
    cw[mask] = parity_of_group(cw, mask);
  // Overall parity over positions 1..12 (even total including cw[0]).
  bool total = false;
  for (std::size_t pos = 1; pos <= 12; ++pos)
    if (cw[pos]) total = !total;
  cw[0] = total;
  return cw;
}

EccDecodeResult ecc_decode(const std::array<bool, kEccCodewordBits>& codeword) {
  std::array<bool, kEccCodewordBits> cw = codeword;
  // Syndrome: XOR of the four group parities (a parity bit participates
  // in its own group, so a correct word has all groups even).
  std::size_t syndrome = 0;
  for (std::size_t mask : {1u, 2u, 4u, 8u})
    if (parity_of_group(cw, mask)) syndrome |= mask;
  bool overall = cw[0];
  for (std::size_t pos = 1; pos <= 12; ++pos)
    if (cw[pos]) overall = !overall;
  // overall == true means odd parity = some single error (incl. cw[0]).

  EccDecodeResult result;
  if (syndrome > 12) {
    // Syndromes 13–15 name no codeword position: only a ≥3-bit error
    // can produce them — flag, don't touch.
    result.uncorrectable = true;
  } else if (syndrome != 0 && overall) {
    // Single error at `syndrome` — correct it.
    cw[syndrome] = !cw[syndrome];
    result.corrected = true;
  } else if (syndrome != 0 && !overall) {
    // Two errors: detectable, not correctable.
    result.uncorrectable = true;
  } else if (syndrome == 0 && overall) {
    // The overall parity bit itself flipped.
    cw[0] = !cw[0];
    result.corrected = true;
  }
  for (std::size_t i = 0; i < 8; ++i)
    if (cw[kDataPositions[i]]) result.data |= static_cast<std::uint8_t>(1u << i);
  return result;
}

EccCrsMemory::EccCrsMemory(std::size_t rows, const CrsCellParams& cell_params)
    : memory_(rows, kEccCodewordBits, cell_params) {}

void EccCrsMemory::write_byte(std::size_t row, std::uint8_t value) {
  const auto cw = ecc_encode(value);
  for (std::size_t i = 0; i < kEccCodewordBits; ++i)
    memory_.write(row, i, cw[i]);
}

EccDecodeResult EccCrsMemory::read_byte(std::size_t row) {
  std::array<bool, kEccCodewordBits> cw{};
  for (std::size_t i = 0; i < kEccCodewordBits; ++i)
    cw[i] = memory_.read(row, i);
  EccDecodeResult result = ecc_decode(cw);
  if (result.corrected) {
    ++corrected_;
    // Scrub: rewrite the corrected codeword so the error does not
    // accumulate into an uncorrectable pair.
    write_byte(row, result.data);
  }
  if (result.uncorrectable) ++uncorrectable_;
  return result;
}

void EccCrsMemory::inject_error(std::size_t row, std::size_t bit) {
  MEMCIM_CHECK_MSG(bit < kEccCodewordBits, "bit index out of codeword");
  const bool current = memory_.read(row, bit);
  memory_.write(row, bit, !current);
}

void EccCrsMemory::inject_stuck(std::size_t row, std::size_t bit,
                                bool stuck_one) {
  MEMCIM_CHECK_MSG(bit < kEccCodewordBits, "bit index out of codeword");
  memory_.cell_mut(row, bit).force_stuck(stuck_one ? CrsState::kOne
                                                   : CrsState::kZero);
}

}  // namespace memcim
