// Passive crossbar array with a self-consistent resistive-network
// solver — the physical substrate of the CIM architecture ("a very
// dense crossbar array where memristors are injected at each junction
// of the crossbar", Section III.A).
//
// Two network fidelities are supported:
//
//  * kLumpedLines  — each word/bit line is one electrical node (wire
//    resistance neglected).  Unknown count is rows+cols, which scales
//    to the large arrays of the Figure 3 sweep.
//  * kDistributed  — every junction gets a node on its row wire and on
//    its column wire, with wire segment resistance between neighbours
//    (2·rows·cols unknowns).  This exposes IR-drop along the lines.
//
// Nonlinear junctions (selectors, CRS, sinh I–V devices) are handled by
// damped fixed-point iteration on the junction chord conductances.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "common/units.h"
#include "crossbar/bias.h"
#include "device/device.h"

namespace memcim {

enum class NetworkModel {
  kLumpedLines,
  kDistributed,
};

[[nodiscard]] const char* to_string(NetworkModel m);

struct CrossbarConfig {
  std::size_t rows = 0;
  std::size_t cols = 0;
  NetworkModel model = NetworkModel::kLumpedLines;
  /// Wire resistance of one segment between adjacent junctions
  /// (kDistributed only).
  Resistance wire_segment{1.0};
  /// Source impedance of every line driver; 0 = ideal drivers.
  Resistance driver{0.0};
  /// Fixed-point iteration controls for nonlinear junctions.
  std::size_t max_nonlinear_iterations = 120;
  double nonlinear_tolerance = 1e-6;  ///< max |ΔV| between sweeps, volts
  double damping = 0.7;               ///< new = λ·solved + (1−λ)·old
  /// Linear-backend crossover: systems with at most this many unknowns
  /// go to dense LU, larger ones to Jacobi-preconditioned CG.  Applies
  /// to both network models.
  std::size_t dense_solver_max_unknowns = 200;
  /// CG convergence target, relative to ‖rhs‖₂.
  double cg_tolerance = 1e-12;
  /// Assemble the nodal CSR structure once per solve and refresh only
  /// junction conductances on later sweeps.  Off = re-assemble every
  /// sweep (the pre-overhaul behavior, kept for benchmarking).
  bool reuse_structure = true;
  /// Seed each solve's node voltages (and each sweep's CG) from the
  /// previous solution.  Off = cold-start every time.
  bool warm_start = true;
};

/// Solution of one bias pattern.
struct CrossbarSolution {
  /// Potential of each row/column line node.  For kDistributed these are
  /// the potentials at the junction nearest the driver end; full nodal
  /// detail is in device_voltage.
  std::vector<double> row_voltage;
  std::vector<double> col_voltage;
  /// Voltage across each junction stack, row-major [r*cols + c].
  std::vector<double> device_voltage;
  /// Current through each junction (positive = row→col), row-major.
  std::vector<double> device_current;
  /// Net current delivered by each driven row/col terminal (amps,
  /// positive = flowing from the source into the array).  Zero for
  /// floating lines.
  std::vector<double> row_terminal_current;
  std::vector<double> col_terminal_current;
  std::size_t nonlinear_iterations = 0;
  bool converged = false;

  [[nodiscard]] Current device_i(std::size_t r, std::size_t c,
                                 std::size_t cols) const {
    return Current(device_current[r * cols + c]);
  }
};

class CrossbarArray {
 public:
  /// Build a rows×cols array whose every junction is a clone of
  /// `prototype`.
  CrossbarArray(const CrossbarConfig& config, const Device& prototype);

  [[nodiscard]] std::size_t rows() const { return config_.rows; }
  [[nodiscard]] std::size_t cols() const { return config_.cols; }
  [[nodiscard]] const CrossbarConfig& config() const { return config_; }

  [[nodiscard]] Device& device(std::size_t r, std::size_t c);
  [[nodiscard]] const Device& device(std::size_t r, std::size_t c) const;

  /// Store a bit as LRS (true) / HRS (false) directly into the device
  /// state — the "ideal programming" shortcut used to set up patterns.
  void store_bit(std::size_t r, std::size_t c, bool bit);
  [[nodiscard]] bool stored_bit(std::size_t r, std::size_t c) const;

  /// Solve the network for a bias pattern.  Throws on malformed bias
  /// vectors; returns converged=false if the nonlinear loop stalls.
  [[nodiscard]] CrossbarSolution solve(const LineBias& bias) const;

  /// Solve, then advance every device state by `dt` under its solved
  /// junction voltage (one transient step — a write/disturb pulse).
  CrossbarSolution apply_pulse(const LineBias& bias, Time dt);

  /// Sum of all junction dissipation during the last apply_pulse.
  [[nodiscard]] Energy total_device_energy() const;

 private:
  [[nodiscard]] CrossbarSolution solve_lumped(const LineBias& bias) const;
  [[nodiscard]] CrossbarSolution solve_distributed(const LineBias& bias) const;

  CrossbarConfig config_;
  std::vector<std::unique_ptr<Device>> devices_;  // row-major

  /// Warm-start caches: node voltages of the previous solve, reused as
  /// the next solve's initial guess (and the CG seed) when
  /// config_.warm_start is on.  Mutable bookkeeping only — the solution
  /// a solve converges to is unchanged; concurrent solve() calls on the
  /// *same* array are not supported (distinct arrays are fine, which is
  /// what the workload fan-out uses).
  mutable std::vector<double> warm_lumped_;       // rows()+cols() entries
  mutable std::vector<double> warm_distributed_;  // 2·rows()·cols() entries
};

}  // namespace memcim
