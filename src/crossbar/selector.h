// Cross-point junction options (Figure 3 right panel, Section IV.B
// "Selector devices"): a memristive element alone (1R) or in series
// with a diode (1D1R), a nonlinear two-terminal selector (1S1R), or an
// access transistor (1T1R).
//
// Each selector composes over any `Device`; the series stack solves its
// internal node by bisection exactly like the CRS, so junction current
// and state evolution stay self-consistent.
#pragma once

#include <functional>
#include <memory>

#include "device/device.h"

namespace memcim {

/// Stateless two-terminal selector characteristic I(V).
struct SelectorIv {
  /// Must be strictly monotone increasing with I(0) = 0.
  std::function<Current(Voltage)> current;
  const char* name = "selector";
};

/// Exponential diode: I = I_s·(e^{V/nVt} − 1), reverse current −I_s.
[[nodiscard]] SelectorIv diode_selector(Current saturation = Current(1e-12),
                                        Voltage thermal = Voltage(0.026),
                                        double ideality = 1.5);

/// Symmetric nonlinear selector (NDR/threshold-type, paper ref [79]):
/// I = g₀·v₀·sinh(V/v₀), where g₀ is the small-signal conductance.
/// To suppress sneak paths g₀ must sit far below the memristor's LRS
/// conductance (so the ~V/3 sneak legs are starved) while the sinh
/// explosion at full read bias still feeds the selected cell; the
/// defaults give a >1e6 full-bias/half-bias current ratio.
[[nodiscard]] SelectorIv nonlinear_selector(Conductance g_on = Conductance(1e-7),
                                            Voltage v0 = Voltage(0.04));

/// A memristive device in series with a selector (1D1R / 1S1R).
class SelectorDevice final : public Device {
 public:
  SelectorDevice(std::unique_ptr<Device> base, SelectorIv selector);

  SelectorDevice(const SelectorDevice& other);
  SelectorDevice& operator=(const SelectorDevice& other);

  [[nodiscard]] Current current(Voltage v) const override;
  void apply(Voltage v, Time dt) override;
  [[nodiscard]] double state() const override { return base_->state(); }
  void set_state(double x) override { base_->set_state(x); }
  [[nodiscard]] std::unique_ptr<Device> clone() const override;

  [[nodiscard]] const Device& base() const { return *base_; }

  /// Voltage across the memristive element when `v` is applied to the
  /// stack (internal-node solution).
  [[nodiscard]] Voltage device_share(Voltage v) const;

 private:
  std::unique_ptr<Device> base_;
  SelectorIv selector_;
};

/// A memristive device gated by an access transistor (1T1R).  The gate
/// is a digital control: enabled → R_on in series, disabled → R_off
/// (effectively open, which is why 1T1R kills sneak paths outright).
class TransistorDevice final : public Device {
 public:
  TransistorDevice(std::unique_ptr<Device> base,
                   Resistance r_on = Resistance(2e3),
                   Resistance r_off = Resistance(1e12));

  TransistorDevice(const TransistorDevice& other);
  TransistorDevice& operator=(const TransistorDevice& other);

  void set_gate(bool enabled) { enabled_ = enabled; }
  [[nodiscard]] bool gate() const { return enabled_; }

  [[nodiscard]] Current current(Voltage v) const override;
  void apply(Voltage v, Time dt) override;
  [[nodiscard]] double state() const override { return base_->state(); }
  void set_state(double x) override { base_->set_state(x); }
  [[nodiscard]] std::unique_ptr<Device> clone() const override;

 private:
  [[nodiscard]] Resistance series_resistance() const {
    return enabled_ ? r_on_ : r_off_;
  }

  std::unique_ptr<Device> base_;
  Resistance r_on_;
  Resistance r_off_;
  bool enabled_ = false;
};

}  // namespace memcim
