// A CRS-based crossbar memory bank with the full read/write protocol of
// Section IV.B: destructive reads of '0' followed by automatic
// write-back, per-transaction pulse and energy accounting.
//
// This is the behavioural (threshold state machine) model — sneak paths
// are structurally absent in a CRS array, which is exactly the paper's
// argument for using CRS junctions, so no network solve is needed for
// functional operation.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "device/crs.h"

namespace memcim {

class CrsMemory {
 public:
  CrsMemory(std::size_t rows, std::size_t cols,
            const CrsCellParams& cell_params);

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }

  /// Write one bit (one full-amplitude pulse).
  void write(std::size_t r, std::size_t c, bool bit);

  /// Read one bit with write-back; counts the extra restore pulse when
  /// the read was destructive.
  [[nodiscard]] bool read(std::size_t r, std::size_t c);

  /// Row-granular word access.
  void write_word(std::size_t r, const std::vector<bool>& bits);
  [[nodiscard]] std::vector<bool> read_word(std::size_t r);

  [[nodiscard]] const CrsCell& cell(std::size_t r, std::size_t c) const;

  /// Mutable cell access for fault injection (src/fault/): pin a cell
  /// stuck via CrsCell::force_stuck() or corrupt its state directly.
  [[nodiscard]] CrsCell& cell_mut(std::size_t r, std::size_t c);

  // -- transaction statistics -----------------------------------------------
  [[nodiscard]] std::uint64_t reads() const { return reads_; }
  [[nodiscard]] std::uint64_t writes() const { return writes_; }
  [[nodiscard]] std::uint64_t destructive_reads() const {
    return destructive_reads_;
  }
  /// Total pulses across all cells (reads, write-backs and writes).
  [[nodiscard]] std::uint64_t total_pulses() const;
  /// Total switching energy across all cells.
  [[nodiscard]] Energy total_energy() const;
  /// Wall-clock time of all pulses issued so far (pulses are serialized
  /// per bank in this model).
  [[nodiscard]] Time total_time() const;

 private:
  [[nodiscard]] CrsCell& at(std::size_t r, std::size_t c);

  std::size_t rows_, cols_;
  std::vector<CrsCell> cells_;
  std::uint64_t reads_ = 0;
  std::uint64_t writes_ = 0;
  std::uint64_t destructive_reads_ = 0;
};

}  // namespace memcim
