// SECDED-protected CRS memory — the production answer to the device
// non-idealities of Section IV.A: with finite endurance (1e10–1e12
// cycles) and disturb accumulation, a large crossbar bank needs error
// correction to reach system-level reliability.  Hamming(13,8):
// 8 data bits, 4 Hamming parity bits and one overall parity bit per
// codeword — single-error correction, double-error detection.
#pragma once

#include <array>
#include <cstdint>

#include "crossbar/crs_memory.h"

namespace memcim {

inline constexpr std::size_t kEccCodewordBits = 13;

/// Encode one byte into a 13-bit SECDED codeword.
[[nodiscard]] std::array<bool, kEccCodewordBits> ecc_encode(std::uint8_t data);

struct EccDecodeResult {
  std::uint8_t data = 0;
  bool corrected = false;      ///< a single-bit error was repaired
  bool uncorrectable = false;  ///< a double-bit error was detected
};

/// Decode a 13-bit codeword, correcting a single flipped bit.
[[nodiscard]] EccDecodeResult ecc_decode(
    const std::array<bool, kEccCodewordBits>& codeword);

/// A byte-granular CRS memory bank with transparent SECDED.
class EccCrsMemory {
 public:
  EccCrsMemory(std::size_t rows, const CrsCellParams& cell_params);

  [[nodiscard]] std::size_t rows() const { return memory_.rows(); }

  void write_byte(std::size_t row, std::uint8_t value);

  /// Read with correction; on a single-bit error the corrected codeword
  /// is scrubbed back into the array.
  [[nodiscard]] EccDecodeResult read_byte(std::size_t row);

  /// Fault injection: flip the stored bit at codeword position `bit`.
  void inject_error(std::size_t row, std::size_t bit);

  /// Fault injection: pin the cell at codeword position `bit` stuck at
  /// logic `stuck_one`.  Unlike inject_error the fault is permanent —
  /// the read-path scrub cannot repair it.
  void inject_stuck(std::size_t row, std::size_t bit, bool stuck_one);

  [[nodiscard]] std::uint64_t corrected_errors() const { return corrected_; }
  [[nodiscard]] std::uint64_t uncorrectable_errors() const {
    return uncorrectable_;
  }
  [[nodiscard]] const CrsMemory& raw() const { return memory_; }

 private:
  CrsMemory memory_;
  std::uint64_t corrected_ = 0;
  std::uint64_t uncorrectable_ = 0;
};

}  // namespace memcim
