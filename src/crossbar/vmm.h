// Analog vector–matrix multiplication on the crossbar — the paper's
// closing pointer beyond digital CIM: memristors "may play a
// significant role in … neural and analogue computing" (Section III.C)
// and "complex self-learning neural networks" (ref [61]).
//
// The crossbar computes y = Wᵀ·x in one shot by physics: weights are
// programmed as junction conductances G = G_min + w·(G_max − G_min),
// inputs are applied as row voltages x·V_read (sub-threshold, so the
// state is undisturbed), and each grounded column's current is the
// weighted sum Σᵢ Gᵢⱼ·Vᵢ.  De-biasing the G_min offset and dividing by
// V_read·(G_max−G_min) recovers the numeric product.
//
// Wire resistance (the distributed network model) introduces the
// IR-drop error every analog-CIM design fights — quantified by
// bench_ablation_vmm.
#pragma once

#include <vector>

#include "crossbar/crossbar.h"

namespace memcim {

struct VmmConfig {
  CrossbarConfig array{};       ///< rows = input length, cols = outputs
  Voltage v_read{0.2};          ///< input full-scale voltage (sub-threshold)
};

class CrossbarVmm {
 public:
  /// `prototype` must expose a monotone state→conductance map; the
  /// conductance window is probed from states 0 and 1.
  CrossbarVmm(const VmmConfig& config, const Device& prototype);

  [[nodiscard]] std::size_t inputs() const { return array_.rows(); }
  [[nodiscard]] std::size_t outputs() const { return array_.cols(); }

  /// Program weights w ∈ [0,1], w[i][j] = weight of input i on output j.
  void program(const std::vector<std::vector<double>>& weights);

  /// Analog multiply: x ∈ [0,1]^inputs → y ≈ Wᵀ·x (exact on ideal
  /// wires/devices; IR-drop and device nonlinearity otherwise).
  [[nodiscard]] std::vector<double> multiply(
      const std::vector<double>& x) const;

  /// Reference multiply with the *programmed* weights (digital golden).
  [[nodiscard]] std::vector<double> golden(const std::vector<double>& x) const;

  /// max_j |multiply − golden| over a given input, normalized to the
  /// number of inputs (full-scale output).
  [[nodiscard]] double relative_error(const std::vector<double>& x) const;

  [[nodiscard]] const CrossbarArray& array() const { return array_; }

 private:
  VmmConfig config_;
  CrossbarArray array_;
  Conductance g_min_{0.0};
  Conductance g_max_{0.0};
  std::vector<std::vector<double>> weights_;
};

}  // namespace memcim
