#include "crossbar/vmm.h"

#include <cmath>

#include "common/error.h"

namespace memcim {

CrossbarVmm::CrossbarVmm(const VmmConfig& config, const Device& prototype)
    : config_(config), array_(config.array, prototype) {
  MEMCIM_CHECK(config_.v_read.value() > 0.0);
  // Probe the conductance window at the read voltage.
  auto probe = prototype.clone();
  probe->set_state(0.0);
  g_min_ = probe->conductance(config_.v_read);
  probe->set_state(1.0);
  g_max_ = probe->conductance(config_.v_read);
  MEMCIM_CHECK_MSG(g_max_.value() > g_min_.value(),
                   "prototype must have a positive conductance window");
  weights_.assign(inputs(), std::vector<double>(outputs(), 0.0));
}

void CrossbarVmm::program(const std::vector<std::vector<double>>& weights) {
  MEMCIM_CHECK_MSG(weights.size() == inputs(), "weight row count mismatch");
  for (std::size_t i = 0; i < inputs(); ++i) {
    MEMCIM_CHECK_MSG(weights[i].size() == outputs(),
                     "weight column count mismatch");
    for (std::size_t j = 0; j < outputs(); ++j) {
      const double w = weights[i][j];
      MEMCIM_CHECK_MSG(w >= 0.0 && w <= 1.0, "weights must lie in [0,1]");
      array_.device(i, j).set_state(w);
      weights_[i][j] = w;
    }
  }
}

std::vector<double> CrossbarVmm::multiply(const std::vector<double>& x) const {
  MEMCIM_CHECK_MSG(x.size() == inputs(), "input length mismatch");
  LineBias bias;
  bias.rows.resize(inputs());
  bias.cols.assign(outputs(), Voltage(0.0));  // virtual-ground columns
  double x_sum = 0.0;
  for (std::size_t i = 0; i < inputs(); ++i) {
    MEMCIM_CHECK_MSG(x[i] >= 0.0 && x[i] <= 1.0, "inputs must lie in [0,1]");
    bias.rows[i] = config_.v_read * x[i];
    x_sum += x[i];
  }
  const CrossbarSolution sol = array_.solve(bias);

  // Column current: I_j = Σ G_ij·v_i.  Subtract the G_min pedestal and
  // normalize to the weight window.
  const double pedestal = g_min_.value() * config_.v_read.value() * x_sum;
  const double scale =
      config_.v_read.value() * (g_max_.value() - g_min_.value());
  std::vector<double> y(outputs());
  for (std::size_t j = 0; j < outputs(); ++j)
    y[j] = (-sol.col_terminal_current[j] - pedestal) / scale;
  return y;
}

std::vector<double> CrossbarVmm::golden(const std::vector<double>& x) const {
  MEMCIM_CHECK(x.size() == inputs());
  std::vector<double> y(outputs(), 0.0);
  for (std::size_t j = 0; j < outputs(); ++j)
    for (std::size_t i = 0; i < inputs(); ++i) y[j] += weights_[i][j] * x[i];
  return y;
}

double CrossbarVmm::relative_error(const std::vector<double>& x) const {
  const std::vector<double> analog = multiply(x);
  const std::vector<double> exact = golden(x);
  double worst = 0.0;
  for (std::size_t j = 0; j < outputs(); ++j)
    worst = std::max(worst, std::abs(analog[j] - exact[j]));
  return worst / static_cast<double>(inputs());
}

}  // namespace memcim
