#include "fault/fabric_faults.h"

#include <utility>

namespace memcim {

FabricFaultInjector::FabricFaultInjector(FaultPlan plan)
    : plan_(std::move(plan)) {}

std::optional<bool> FabricFaultInjector::stuck_value(Reg r) const {
  return plan_.stuck_bit(r);
}

bool FabricFaultInjector::write_fails(Reg r) {
  const bool fails = plan_.write_fails(r);
  if (fails) ++vetoed_writes_;
  return fails;
}

bool FabricFaultInjector::disturb_read(Reg r, bool sensed) {
  if (!plan_.read_disturbed(r)) return sensed;
  ++disturbed_reads_;
  return !sensed;
}

}  // namespace memcim
