#include "fault/fault_model.h"

#include <algorithm>

#include "common/error.h"

namespace memcim {

namespace {

/// splitmix64 finalizer — decorrelates (seed, salt) pairs into
/// independent stream seeds.
std::uint64_t mix(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

}  // namespace

const char* to_string(FaultKind k) {
  switch (k) {
    case FaultKind::kStuckAtLrs: return "stuck-at-LRS";
    case FaultKind::kStuckAtHrs: return "stuck-at-HRS";
    case FaultKind::kWriteFail: return "write-fail";
    case FaultKind::kDrift: return "drift";
    case FaultKind::kReadDisturb: return "read-disturb";
  }
  return "?";
}

FaultPlan::FaultPlan(std::size_t population, std::uint64_t seed)
    : population_(population), seed_(seed) {}

FaultPlan::Site& FaultPlan::site_entry(std::size_t site) {
  auto [it, inserted] = sites_.try_emplace(site);
  if (inserted) it->second.events = Rng(mix(seed_ ^ mix(site + 1)));
  return it->second;
}

const FaultPlan::Site* FaultPlan::find(std::size_t site) const {
  const auto it = sites_.find(site);
  return it == sites_.end() ? nullptr : &it->second;
}

void FaultPlan::arm(const FaultSpec& spec) {
  MEMCIM_CHECK_MSG(spec.rate >= 0.0 && spec.rate <= 1.0,
                   "fault rate must be in [0, 1]");
  MEMCIM_CHECK_MSG(spec.event_prob >= 0.0 && spec.event_prob <= 1.0,
                   "event probability must be in [0, 1]");
  MEMCIM_CHECK_MSG(spec.magnitude >= 0.0 && spec.magnitude <= 1.0,
                   "drift magnitude must be in [0, 1]");
  // One private stream per (seed, spec order): arming a second class
  // never perturbs where the first one landed.
  Rng draw(mix(seed_ ^ mix(0xA9E1ull + specs_armed_)));
  ++specs_armed_;
  if (spec.rate <= 0.0) return;
  for (std::size_t s = 0; s < population_; ++s) {
    if (!draw.bernoulli(spec.rate)) continue;
    Site& entry = site_entry(s);
    switch (spec.kind) {
      case FaultKind::kStuckAtLrs: entry.stuck = true; break;
      case FaultKind::kStuckAtHrs: entry.stuck = false; break;
      case FaultKind::kWriteFail: entry.write_fail_prob = spec.event_prob; break;
      case FaultKind::kDrift: entry.drift = spec.magnitude; break;
      case FaultKind::kReadDisturb:
        entry.read_disturb_prob = spec.event_prob;
        break;
    }
    armed_.push_back({s, spec.kind, spec.event_prob, spec.magnitude});
  }
}

FaultPlan FaultPlan::draw(std::size_t population, std::uint64_t seed,
                          const std::vector<FaultSpec>& specs) {
  FaultPlan plan(population, seed);
  for (const FaultSpec& spec : specs) plan.arm(spec);
  return plan;
}

std::optional<bool> FaultPlan::stuck_bit(std::size_t site) const {
  const Site* s = find(site);
  return s != nullptr ? s->stuck : std::nullopt;
}

bool FaultPlan::is_armed(std::size_t site, FaultKind kind) const {
  const Site* s = find(site);
  if (s == nullptr) return false;
  switch (kind) {
    case FaultKind::kStuckAtLrs: return s->stuck == true;
    case FaultKind::kStuckAtHrs: return s->stuck == false;
    case FaultKind::kWriteFail: return s->write_fail_prob > 0.0;
    case FaultKind::kDrift: return s->drift > 0.0;
    case FaultKind::kReadDisturb: return s->read_disturb_prob > 0.0;
  }
  return false;
}

double FaultPlan::drift_at(std::size_t site) const {
  const Site* s = find(site);
  return s != nullptr ? s->drift : 0.0;
}

bool FaultPlan::write_fails(std::size_t site) {
  const auto it = sites_.find(site);
  if (it == sites_.end() || it->second.write_fail_prob <= 0.0) return false;
  return it->second.events.bernoulli(it->second.write_fail_prob);
}

bool FaultPlan::read_disturbed(std::size_t site) {
  const auto it = sites_.find(site);
  if (it == sites_.end() || it->second.read_disturb_prob <= 0.0) return false;
  return it->second.events.bernoulli(it->second.read_disturb_prob);
}

std::uint64_t FaultPlan::fingerprint() const {
  // Sort a copy so the digest is independent of arming order; FNV-1a
  // over the armed tuples.
  std::vector<ArmedFault> sorted = armed_;
  std::sort(sorted.begin(), sorted.end(),
            [](const ArmedFault& a, const ArmedFault& b) {
              if (a.site != b.site) return a.site < b.site;
              return static_cast<int>(a.kind) < static_cast<int>(b.kind);
            });
  std::uint64_t h = 0xCBF29CE484222325ull;
  const auto absorb = [&h](std::uint64_t v) {
    h ^= v;
    h *= 0x100000001B3ull;
  };
  absorb(population_);
  for (const ArmedFault& f : sorted) {
    absorb(f.site);
    absorb(static_cast<std::uint64_t>(f.kind));
    absorb(static_cast<std::uint64_t>(f.event_prob * 1e9));
    absorb(static_cast<std::uint64_t>(f.magnitude * 1e9));
  }
  return h;
}

}  // namespace memcim
