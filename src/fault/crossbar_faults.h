// Bind a FaultPlan to the crossbar-layer structures: analog crossbar
// arrays (stuck junctions + conductance drift), behavioural CRS memory
// banks and SECDED banks (stuck cells), CAMs (stuck value cells) and
// TC-adder farms (stuck sum/carry/scratch cells).
//
// Site numbering is row-major everywhere: site = r * cols + c for
// arrays and memories, site = row * word_bits + bit for CAMs, and
// site = adder * fault_sites() + cell for adder farms.
#pragma once

#include <cstddef>
#include <vector>

#include "crossbar/crossbar.h"
#include "crossbar/crs_memory.h"
#include "crossbar/ecc_memory.h"
#include "fault/fault_model.h"
#include "logic/cam.h"
#include "logic/tc_adder.h"

namespace memcim {

/// What a plan application actually touched.
struct CrossbarFaultSummary {
  std::size_t stuck_lrs = 0;
  std::size_t stuck_hrs = 0;
  std::size_t drifted = 0;
  [[nodiscard]] std::size_t total() const {
    return stuck_lrs + stuck_hrs + drifted;
  }
};

/// Force stuck junction states (LRS = state 1, HRS = state 0) and
/// apply drift displacement toward 0.5 on an analog crossbar.  The
/// plan population must cover rows*cols sites.
CrossbarFaultSummary apply_fault_plan(CrossbarArray& array,
                                      const FaultPlan& plan);

/// Pin stuck CRS cells in a behavioural memory bank.
CrossbarFaultSummary apply_fault_plan(CrsMemory& memory,
                                      const FaultPlan& plan);

/// Pin stuck cells in a SECDED bank (site = row * 13 + codeword bit).
CrossbarFaultSummary apply_fault_plan(EccCrsMemory& memory,
                                      const FaultPlan& plan);

/// Pin stuck value cells in a CAM (site = row * word_bits + bit).
CrossbarFaultSummary apply_fault_plan(CrsCam& cam, const FaultPlan& plan);

/// Pin stuck cells across a TC-adder farm
/// (site = adder * fault_sites() + cell).
CrossbarFaultSummary apply_fault_plan(std::vector<CrsTcAdder>& farm,
                                      const FaultPlan& plan);

}  // namespace memcim
