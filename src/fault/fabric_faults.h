// FaultPlan-driven implementation of the FabricFaultHooks interface:
// attach one of these to any Fabric (ideal, device-level, CRS) and the
// plan's stuck-at / write-fail / read-disturb faults act on the
// fabric's registers (site index = register index; registers beyond
// the plan population are fault-free).
#pragma once

#include <cstdint>

#include "fault/fault_model.h"
#include "logic/fabric.h"

namespace memcim {

class FabricFaultInjector final : public FabricFaultHooks {
 public:
  explicit FabricFaultInjector(FaultPlan plan);

  [[nodiscard]] std::optional<bool> stuck_value(Reg r) const override;
  [[nodiscard]] bool write_fails(Reg r) override;
  [[nodiscard]] bool disturb_read(Reg r, bool sensed) override;

  [[nodiscard]] const FaultPlan& plan() const { return plan_; }
  [[nodiscard]] FaultPlan& plan() { return plan_; }

  // -- event tallies --------------------------------------------------------
  [[nodiscard]] std::uint64_t vetoed_writes() const { return vetoed_writes_; }
  [[nodiscard]] std::uint64_t disturbed_reads() const {
    return disturbed_reads_;
  }

 private:
  FaultPlan plan_;
  std::uint64_t vetoed_writes_ = 0;
  std::uint64_t disturbed_reads_ = 0;
};

}  // namespace memcim
