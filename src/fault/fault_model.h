// Fault models and the seeded, reproducible FaultPlan — the root of
// the reliability subsystem.
//
// Section IV.A/B of the paper surveys exactly the defects modelled
// here: finite endurance leaves devices stuck (stuck-at-LRS reads a
// permanent logic 1, stuck-at-HRS a permanent 0), weak programming
// pulses fail to switch (write failure), conductance relaxes over time
// (drift), and half-selected reads upset neighbours (read disturb).
// A FaultPlan draws a deterministic set of armed faults over a
// population of fault *sites* (crossbar junctions, memory cells,
// fabric registers — the binding is the consumer's) from a single
// seed, so every campaign is reproducible bit-for-bit and independent
// of thread count.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/rng.h"

namespace memcim {

enum class FaultKind : std::uint8_t {
  kStuckAtLrs,   ///< SA1: device pinned low-resistive, reads logic 1
  kStuckAtHrs,   ///< SA0: device pinned high-resistive, reads logic 0
  kWriteFail,    ///< weak device: each write fails with event_prob
  kDrift,        ///< conductance relaxed toward the divide by magnitude
  kReadDisturb,  ///< each read returns a flipped bit with event_prob
};

[[nodiscard]] const char* to_string(FaultKind k);

/// One fault class to arm over the population.
struct FaultSpec {
  FaultKind kind = FaultKind::kStuckAtLrs;
  /// Fraction of sites armed with this fault (per-site Bernoulli).
  double rate = 0.0;
  /// Per-event probability for kWriteFail / kReadDisturb.
  double event_prob = 1.0;
  /// State displacement toward 0.5 for kDrift, in [0, 1].
  double magnitude = 0.25;
};

/// One armed fault instance, as drawn.
struct ArmedFault {
  std::size_t site = 0;
  FaultKind kind = FaultKind::kStuckAtLrs;
  double event_prob = 1.0;
  double magnitude = 0.0;
};

/// A reproducible assignment of faults to sites.
///
/// Arming walks the population in site order drawing from an Rng
/// seeded only by (seed, spec order), and per-event randomness
/// (write-fail, read-disturb) comes from a per-site stream derived
/// from (seed, site) — so outcomes depend on each site's own event
/// order, never on cross-site interleaving or the thread count.
class FaultPlan {
 public:
  FaultPlan(std::size_t population, std::uint64_t seed);

  /// Draw and arm one fault class; callable repeatedly.  When two
  /// stuck-at specs hit the same site, the later arm wins.
  void arm(const FaultSpec& spec);

  /// Convenience: build a plan and arm every spec in order.
  [[nodiscard]] static FaultPlan draw(std::size_t population,
                                      std::uint64_t seed,
                                      const std::vector<FaultSpec>& specs);

  [[nodiscard]] std::size_t population() const { return population_; }
  [[nodiscard]] std::uint64_t seed() const { return seed_; }
  [[nodiscard]] std::size_t armed_count() const { return armed_.size(); }
  [[nodiscard]] const std::vector<ArmedFault>& armed() const { return armed_; }

  // -- per-site queries (sites outside the population are fault-free) -------
  /// Pinned logic value of a stuck site; nullopt when not stuck.
  [[nodiscard]] std::optional<bool> stuck_bit(std::size_t site) const;
  [[nodiscard]] bool is_armed(std::size_t site, FaultKind kind) const;
  /// Drift displacement toward 0.5 at this site (0 when unarmed).
  [[nodiscard]] double drift_at(std::size_t site) const;

  // -- per-event draws (mutate the site's private stream) -------------------
  [[nodiscard]] bool write_fails(std::size_t site);
  [[nodiscard]] bool read_disturbed(std::size_t site);

  /// Order-independent digest of the armed set — the reproducibility
  /// witness used by tests and BENCH_faults.json.
  [[nodiscard]] std::uint64_t fingerprint() const;

 private:
  struct Site {
    std::optional<bool> stuck;
    double write_fail_prob = 0.0;
    double read_disturb_prob = 0.0;
    double drift = 0.0;
    Rng events{0};
  };

  [[nodiscard]] Site& site_entry(std::size_t site);
  [[nodiscard]] const Site* find(std::size_t site) const;

  std::size_t population_;
  std::uint64_t seed_;
  std::size_t specs_armed_ = 0;
  std::vector<ArmedFault> armed_;
  std::unordered_map<std::size_t, Site> sites_;
};

}  // namespace memcim
