// Reliability campaigns: sweep fault rates across every CIM structure
// the paper's evaluation leans on — the SECDED memory bank, the IMPLY
// ripple adder (ideal and CRS fabrics), the CRS TC-adder, the CAM
// search array, the crossbar readout path, and the two end-to-end
// workloads (DNA read matching on a k-mer CAM, the parallel-add
// farm), plus the mesh NoC's links (stuck wires vs the per-flit
// parity check).  Every campaign is a golden-model differential: the same
// trial runs on a fault-free golden model and on the faulty structure,
// and each trial lands in exactly one DiffOutcome bucket.  The fault
// rate 0.0 row doubles as the plumbing self-test: it must be 100%
// clean on every target, at any thread count.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "fault/fault_model.h"
#include "fault/golden.h"
#include "telemetry/json_writer.h"

namespace memcim {

struct CampaignConfig {
  std::uint64_t seed = 0xFA177ull;
  /// Per-site arming rates swept per target (0.0 = golden self-test).
  std::vector<double> rates{0.0, 0.001, 0.003, 0.01, 0.03};

  std::size_t ecc_words = 384;       ///< SECDED bank rows per rate
  std::size_t adder_trials = 72;     ///< additions per fabric per rate
  std::size_t adder_bits = 8;        ///< IMPLY / TC adder operand width
  std::size_t cam_rows = 48;         ///< CAM words per rate
  std::size_t cam_bits = 24;         ///< CAM word width
  std::size_t cam_searches = 96;     ///< searches per rate
  std::size_t readout_size = 8;      ///< crossbar readout array (N×N)
  std::size_t dna_bases = 320;       ///< synthetic genome length
  std::size_t dna_k = 12;            ///< k-mer width (2 bits/base in CAM)
  std::size_t dna_reads = 64;        ///< reads matched per rate
  std::size_t add_ops = 128;         ///< parallel-add batch size
  std::size_t add_width = 16;        ///< parallel-add operand width
  std::size_t add_adders = 16;       ///< parallel-add farm size
  std::size_t noc_mesh = 4;          ///< link-fault mesh is noc_mesh²
  std::size_t noc_payload_bits = 16; ///< flit payload width per link
  std::size_t noc_packets = 96;      ///< packets driven per rate
};

/// One (target, rate) cell of the campaign sweep.
struct CampaignTally {
  std::string target;
  double rate = 0.0;
  DiffTally diff;
  std::uint64_t armed_faults = 0;  ///< faults the plan actually armed

  // ECC-only detail: the acceptance criteria of the subsystem.
  std::uint64_t single_bit_injected = 0;
  std::uint64_t single_bit_corrected = 0;
  std::uint64_t double_bit_injected = 0;
  std::uint64_t double_bit_detected = 0;
};

// -- per-target campaigns (one rate each) -----------------------------------
[[nodiscard]] CampaignTally run_ecc_campaign(const CampaignConfig& config,
                                             double rate);
[[nodiscard]] CampaignTally run_imply_adder_campaign(
    const CampaignConfig& config, double rate, bool crs_backend);
[[nodiscard]] CampaignTally run_tc_adder_campaign(const CampaignConfig& config,
                                                  double rate);
[[nodiscard]] CampaignTally run_cam_campaign(const CampaignConfig& config,
                                             double rate);
[[nodiscard]] CampaignTally run_readout_campaign(const CampaignConfig& config,
                                                 double rate);
[[nodiscard]] CampaignTally run_dna_campaign(const CampaignConfig& config,
                                             double rate);
[[nodiscard]] CampaignTally run_parallel_add_campaign(
    const CampaignConfig& config, double rate);
[[nodiscard]] CampaignTally run_noc_link_campaign(const CampaignConfig& config,
                                                  double rate);

/// The full sweep: every target × every configured rate, in a fixed
/// deterministic order (targets outer, rates inner).
[[nodiscard]] std::vector<CampaignTally> run_full_campaign(
    const CampaignConfig& config);

/// Serialize a sweep as the BENCH_faults.json document.  `extra`, when
/// set, appends additional top-level keys right after the bench name —
/// the bench binary passes the shared provenance stamper here so the
/// envelope matches every other memcim-bench-v1 document without this
/// layer depending on bench headers.
using CampaignJsonExtra = std::function<void(telemetry::JsonWriter&)>;
[[nodiscard]] std::string campaign_json(const CampaignConfig& config,
                                        const std::vector<CampaignTally>& sweep,
                                        const CampaignJsonExtra& extra = {});

}  // namespace memcim
