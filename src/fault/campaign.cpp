#include "fault/campaign.h"

#include "common/error.h"
#include "crossbar/readout.h"
#include "device/presets.h"
#include "device/vcm.h"
#include "fault/crossbar_faults.h"
#include "fault/fabric_faults.h"
#include "logic/adder.h"
#include "logic/cam.h"
#include "logic/crs_fabric.h"
#include "logic/ideal_fabric.h"
#include "logic/tc_adder.h"
#include "noc/mesh.h"
#include "telemetry/json_writer.h"
#include "telemetry/telemetry.h"
#include "workloads/dna.h"
#include "workloads/parallel_add.h"

namespace memcim {

namespace {

/// Per-target trial classification counters
/// ("fault.<target>.clean|corrected|detected|silent" plus totals).
/// Called once per finished campaign; the tally itself is already a
/// deterministic reduction, so the counters inherit that property.
CampaignTally record_campaign(CampaignTally tally) {
  if (telemetry::enabled()) {
    telemetry::Registry& reg = telemetry::Registry::global();
    reg.counter("fault.campaigns").add(1);
    reg.counter("fault.armed_faults").add(tally.armed_faults);
    const std::string base = "fault." + tally.target;
    reg.counter(base + ".trials").add(tally.diff.trials);
    reg.counter(base + ".clean").add(tally.diff.clean);
    reg.counter(base + ".corrected").add(tally.diff.corrected);
    reg.counter(base + ".detected").add(tally.diff.detected);
    reg.counter(base + ".silent").add(tally.diff.silent);
  }
  return tally;
}

/// splitmix64 finalizer (same construction as fault_model.cpp).
std::uint64_t mix(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

/// Independent stream per (campaign seed, target, rate[, trial]).
std::uint64_t derive(std::uint64_t seed, std::uint64_t tag, double rate,
                     std::uint64_t trial = 0) {
  return mix(seed ^ mix(tag) ^ mix(static_cast<std::uint64_t>(rate * 1e9)) ^
             mix(trial + 0x51ull));
}

/// The standard stuck-at mix: half the armed sites pin to LRS, half to
/// HRS (each drawn independently at rate/2).
std::vector<FaultSpec> stuck_specs(double rate) {
  return {{FaultKind::kStuckAtLrs, rate / 2.0, 1.0, 0.0},
          {FaultKind::kStuckAtHrs, rate / 2.0, 1.0, 0.0}};
}

/// Stuck-ats plus the transient classes, for fabric-register targets.
std::vector<FaultSpec> fabric_specs(double rate) {
  std::vector<FaultSpec> specs = stuck_specs(rate);
  specs.push_back({FaultKind::kWriteFail, rate, 0.5, 0.0});
  specs.push_back({FaultKind::kReadDisturb, rate, 0.5, 0.0});
  return specs;
}

std::uint64_t random_operand(Rng& rng, std::size_t bits) {
  const std::uint64_t max = (std::uint64_t{1} << bits) - 1;
  return static_cast<std::uint64_t>(
      rng.uniform_int(0, static_cast<std::int64_t>(max)));
}

/// 2-bit LSB-first encoding of a k-mer for CAM storage.
std::vector<bool> encode_kmer(const std::string& kmer) {
  std::vector<bool> bits;
  bits.reserve(2 * kmer.size());
  for (const char c : kmer) {
    const auto code = static_cast<std::uint8_t>(nucleotide_from_char(c));
    bits.push_back((code & 1u) != 0);
    bits.push_back((code & 2u) != 0);
  }
  return bits;
}

}  // namespace

CampaignTally run_ecc_campaign(const CampaignConfig& config, double rate) {
  CampaignTally tally;
  tally.target = "ecc_memory";
  tally.rate = rate;

  FaultPlan plan = FaultPlan::draw(config.ecc_words * kEccCodewordBits,
                                   derive(config.seed, 0xECC, rate),
                                   stuck_specs(rate));
  tally.armed_faults = plan.armed_count();

  EccCrsMemory memory(config.ecc_words, presets::crs_cell());
  Rng data_rng(derive(config.seed, 0xECCDA7A, rate));
  std::vector<std::uint8_t> written(config.ecc_words);
  for (std::size_t w = 0; w < config.ecc_words; ++w) {
    written[w] = static_cast<std::uint8_t>(data_rng.uniform_int(0, 255));
    memory.write_byte(w, written[w]);
  }

  (void)apply_fault_plan(memory, plan);

  // Effective flips per word: a stuck cell corrupts only where the
  // stored codeword bit disagrees with the pinned value.
  std::vector<std::size_t> flips(config.ecc_words, 0);
  for (std::size_t w = 0; w < config.ecc_words; ++w) {
    const auto codeword = ecc_encode(written[w]);
    for (std::size_t bit = 0; bit < kEccCodewordBits; ++bit) {
      const auto stuck = plan.stuck_bit(w * kEccCodewordBits + bit);
      if (stuck && *stuck != codeword[bit]) ++flips[w];
    }
  }

  for (std::size_t w = 0; w < config.ecc_words; ++w) {
    const EccDecodeResult r = memory.read_byte(w);
    const bool data_ok = r.data == written[w];
    DiffOutcome outcome = DiffOutcome::kSilent;
    switch (flips[w]) {
      case 0:
        outcome = data_ok && !r.uncorrectable ? DiffOutcome::kClean
                                              : DiffOutcome::kSilent;
        break;
      case 1:
        ++tally.single_bit_injected;
        if (r.corrected && data_ok && !r.uncorrectable) {
          ++tally.single_bit_corrected;
          outcome = DiffOutcome::kCorrected;
        } else {
          outcome =
              r.uncorrectable ? DiffOutcome::kDetected : DiffOutcome::kSilent;
        }
        break;
      case 2:
        ++tally.double_bit_injected;
        if (r.uncorrectable) {
          ++tally.double_bit_detected;
          outcome = DiffOutcome::kDetected;
        } else {
          outcome = data_ok ? DiffOutcome::kClean : DiffOutcome::kSilent;
        }
        break;
      default:  // ≥ 3 flips: beyond SECDED, anything can happen
        if (r.uncorrectable)
          outcome = DiffOutcome::kDetected;
        else
          outcome = data_ok ? DiffOutcome::kClean : DiffOutcome::kSilent;
        break;
    }
    tally.diff.add(outcome);
  }
  return record_campaign(std::move(tally));
}

CampaignTally run_imply_adder_campaign(const CampaignConfig& config,
                                       double rate, bool crs_backend) {
  CampaignTally tally;
  tally.target = crs_backend ? "imply_adder_crs" : "imply_adder_ideal";
  tally.rate = rate;
  const std::uint64_t tag = crs_backend ? 0xADD2ull : 0xADD1ull;

  // Size the register population from one golden run.
  const std::size_t population = [&] {
    IdealFabric probe;
    (void)add_integers(probe, 0, 0, config.adder_bits);
    return probe.size();
  }();

  const std::uint64_t mask = (std::uint64_t{1} << config.adder_bits) - 1;
  Rng operand_rng(derive(config.seed, tag, rate));
  for (std::size_t trial = 0; trial < config.adder_trials; ++trial) {
    FaultPlan plan = FaultPlan::draw(
        population, derive(config.seed, tag, rate, trial), fabric_specs(rate));
    tally.armed_faults += plan.armed_count();
    FabricFaultInjector injector(std::move(plan));

    const std::uint64_t a = random_operand(operand_rng, config.adder_bits);
    const std::uint64_t b = random_operand(operand_rng, config.adder_bits);
    std::uint64_t got = 0;
    if (crs_backend) {
      CrsFabric fabric(presets::crs_cell());
      fabric.attach_faults(&injector);
      got = add_integers(fabric, a, b, config.adder_bits);
    } else {
      IdealFabric fabric;
      fabric.attach_faults(&injector);
      got = add_integers(fabric, a, b, config.adder_bits);
    }
    tally.diff.add(got == ((a + b) & mask) ? DiffOutcome::kClean
                                           : DiffOutcome::kSilent);
  }
  return record_campaign(std::move(tally));
}

CampaignTally run_tc_adder_campaign(const CampaignConfig& config,
                                    double rate) {
  CampaignTally tally;
  tally.target = "tc_adder";
  tally.rate = rate;

  const std::uint64_t mask = (std::uint64_t{1} << config.adder_bits) - 1;
  Rng operand_rng(derive(config.seed, 0x7CADD, rate));
  for (std::size_t trial = 0; trial < config.adder_trials; ++trial) {
    CrsTcAdder adder(config.adder_bits, presets::crs_cell());
    FaultPlan plan =
        FaultPlan::draw(adder.fault_sites(),
                        derive(config.seed, 0x7CADD, rate, trial),
                        stuck_specs(rate));
    tally.armed_faults += plan.armed_count();
    std::vector<CrsTcAdder> farm;
    farm.push_back(std::move(adder));
    (void)apply_fault_plan(farm, plan);

    const std::uint64_t a = random_operand(operand_rng, config.adder_bits);
    const std::uint64_t b = random_operand(operand_rng, config.adder_bits);
    const TcAdderResult r = farm.front().add(a, b);
    const bool sum_ok = r.sum == ((a + b) & mask);
    const bool carry_ok = r.carry_out == (((a + b) >> config.adder_bits) != 0);
    tally.diff.add(sum_ok && carry_ok ? DiffOutcome::kClean
                                      : DiffOutcome::kSilent);
  }
  return record_campaign(std::move(tally));
}

CampaignTally run_cam_campaign(const CampaignConfig& config, double rate) {
  CampaignTally tally;
  tally.target = "cam_search";
  tally.rate = rate;

  CamConfig cam_config;
  cam_config.rows = config.cam_rows;
  cam_config.word_bits = config.cam_bits;
  cam_config.cell = presets::crs_cell();
  CrsCam cam(cam_config);

  Rng rng(derive(config.seed, 0xCA3, rate));
  std::vector<std::vector<bool>> golden(config.cam_rows);
  for (std::size_t row = 0; row < config.cam_rows; ++row) {
    golden[row].resize(config.cam_bits);
    for (std::size_t bit = 0; bit < config.cam_bits; ++bit)
      golden[row][bit] = rng.bernoulli(0.5);
    cam.write_row(row, golden[row]);
  }

  FaultPlan plan = FaultPlan::draw(config.cam_rows * config.cam_bits,
                                   derive(config.seed, 0xCA3F, rate),
                                   stuck_specs(rate));
  tally.armed_faults = plan.armed_count();
  (void)apply_fault_plan(cam, plan);

  for (std::size_t s = 0; s < config.cam_searches; ++s) {
    // Alternate guaranteed-hit keys with random probes.
    std::vector<bool> key;
    if (s % 2 == 0) {
      key = golden[static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(config.cam_rows - 1)))];
    } else {
      key.resize(config.cam_bits);
      for (std::size_t bit = 0; bit < config.cam_bits; ++bit)
        key[bit] = rng.bernoulli(0.5);
    }
    std::vector<std::size_t> expected;
    for (std::size_t row = 0; row < config.cam_rows; ++row)
      if (golden[row] == key) expected.push_back(row);
    const CamSearchResult got = cam.search(key);
    tally.diff.add(got.matching_rows == expected ? DiffOutcome::kClean
                                                 : DiffOutcome::kSilent);
  }
  return record_campaign(std::move(tally));
}

CampaignTally run_readout_campaign(const CampaignConfig& config, double rate) {
  CampaignTally tally;
  tally.target = "crossbar_readout";
  tally.rate = rate;

  const std::size_t n = config.readout_size;
  CrossbarConfig xbar_config;
  xbar_config.rows = n;
  xbar_config.cols = n;
  xbar_config.model = NetworkModel::kLumpedLines;
  const VcmDevice proto(presets::vcm_taox(), 0.0);
  CrossbarArray array(xbar_config, proto);

  ReadConfig read_config;
  read_config.scheme = BiasScheme::kGrounded;
  const ReadMeasurement reference =
      measure_read_margin(array, 0, 0, read_config);

  Rng rng(derive(config.seed, 0x2EAD, rate));
  std::vector<bool> intended(n * n);
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = 0; c < n; ++c) {
      intended[r * n + c] = rng.bernoulli(0.5);
      array.store_bit(r, c, intended[r * n + c]);
    }

  std::vector<FaultSpec> specs = stuck_specs(rate);
  specs.push_back({FaultKind::kDrift, rate, 1.0, 0.6});
  FaultPlan plan =
      FaultPlan::draw(n * n, derive(config.seed, 0x2EADF, rate), specs);
  tally.armed_faults = plan.armed_count();
  (void)apply_fault_plan(array, plan);

  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = 0; c < n; ++c) {
      const bool sensed = read_bit(array, r, c, read_config, reference);
      tally.diff.add(sensed == intended[r * n + c] ? DiffOutcome::kClean
                                                   : DiffOutcome::kSilent);
    }
  return record_campaign(std::move(tally));
}

CampaignTally run_dna_campaign(const CampaignConfig& config, double rate) {
  CampaignTally tally;
  tally.target = "dna_workload";
  tally.rate = rate;

  MEMCIM_CHECK_MSG(config.dna_bases > config.dna_k,
                   "genome shorter than the k-mer");
  Rng rng(derive(config.seed, 0xD7A, rate));
  const std::string genome = generate_genome(config.dna_bases, rng);
  const std::size_t windows = config.dna_bases - config.dna_k + 1;

  // The CIM side of the pipeline: every reference k-mer resident in
  // one CAM row, each read resolved by one parallel search.
  CamConfig cam_config;
  cam_config.rows = windows;
  cam_config.word_bits = 2 * config.dna_k;
  cam_config.cell = presets::crs_cell();
  CrsCam cam(cam_config);
  for (std::size_t pos = 0; pos < windows; ++pos)
    cam.write_row(pos, encode_kmer(genome.substr(pos, config.dna_k)));

  FaultPlan plan = FaultPlan::draw(windows * cam_config.word_bits,
                                   derive(config.seed, 0xD7AF, rate),
                                   stuck_specs(rate));
  tally.armed_faults = plan.armed_count();
  (void)apply_fault_plan(cam, plan);

  for (std::size_t i = 0; i < config.dna_reads; ++i) {
    const auto pos = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(windows - 1)));
    const std::string read = genome.substr(pos, config.dna_k);
    // Golden model: exact string scan over the clean reference.
    std::vector<std::size_t> expected;
    for (std::size_t w = 0; w < windows; ++w)
      if (genome.compare(w, config.dna_k, read) == 0) expected.push_back(w);
    const CamSearchResult got = cam.search(encode_kmer(read));
    tally.diff.add(got.matching_rows == expected ? DiffOutcome::kClean
                                                 : DiffOutcome::kSilent);
  }
  return record_campaign(std::move(tally));
}

CampaignTally run_parallel_add_campaign(const CampaignConfig& config,
                                        double rate) {
  CampaignTally tally;
  tally.target = "parallel_add_workload";
  tally.rate = rate;

  ParallelAddParams params;
  params.operations = config.add_ops;
  params.width = config.add_width;
  params.adders = config.add_adders;

  FaultPlan plan = FaultPlan::draw(config.add_adders * (config.add_width + 2),
                                   derive(config.seed, 0xFA23, rate),
                                   stuck_specs(rate));
  tally.armed_faults = plan.armed_count();
  params.farm_hook = [&plan](std::vector<CrsTcAdder>& farm) {
    (void)apply_fault_plan(farm, plan);
  };

  Rng rng(derive(config.seed, 0xFA23DA7A, rate));
  const ParallelAddResult result =
      run_parallel_add(params, presets::crs_cell(), rng);

  // The armed hook (even with zero faults drawn) forces the scalar
  // device farm, so the rate-0 row doubles as the packed-vs-scalar
  // golden cross-check: the same operand stream on the packed engine
  // must reproduce every sum, pulse, energy and latency bit for bit.
  // Any divergence is a modelling bug, reported as silent corruption so
  // the campaign's "rate-0 rows 100% clean" acceptance gate trips.
  bool engines_diverged = false;
  if (rate == 0.0) {
    ParallelAddParams packed_params = params;
    packed_params.farm_hook = nullptr;
    packed_params.engine = AdderEngine::kPacked;
    Rng packed_rng(derive(config.seed, 0xFA23DA7A, rate));
    const ParallelAddResult packed =
        run_parallel_add(packed_params, presets::crs_cell(), packed_rng);
    engines_diverged = !packed.used_packed_engine ||
                       packed.sums != result.sums ||
                       packed.total_pulses != result.total_pulses ||
                       packed.total_energy != result.total_energy ||
                       packed.latency != result.latency ||
                       packed.mismatches != result.mismatches;
  }

  // run_parallel_add golden-checks every sum against native addition;
  // mismatches are exactly the silent corruptions of the faulty farm.
  for (std::uint64_t op = 0; op < result.sums.size(); ++op)
    tally.diff.add(engines_diverged || op < result.mismatches
                       ? DiffOutcome::kSilent
                       : DiffOutcome::kClean);
  return record_campaign(std::move(tally));
}

CampaignTally run_noc_link_campaign(const CampaignConfig& config, double rate) {
  CampaignTally tally;
  tally.target = "noc_link";
  tally.rate = rate;

  NocParams params;
  params.flit_payload_bits = config.noc_payload_bits;
  MeshNoc noc(config.noc_mesh, config.noc_mesh, params);

  // The fault population is every wire of every directional link (edge
  // link ids are no-op targets, keeping the site space rectangular).
  const std::size_t wires = params.link_wires();
  FaultPlan plan = FaultPlan::draw(noc.link_population() * wires,
                                   derive(config.seed, 0x40CF, rate),
                                   stuck_specs(rate));
  tally.armed_faults = plan.armed_count();
  for (const ArmedFault& fault : plan.armed()) {
    const std::optional<bool> bit = plan.stuck_bit(fault.site);
    if (bit) noc.set_link_fault(fault.site / wires, fault.site % wires, *bit);
  }

  // Drive a deterministic random-pairs pattern; each delivery is one
  // trial.  Wire data derives from the fingerprint, so the fault-free
  // reference is implicit: corrupted_flits counts bits a stuck wire
  // changed, and the parity wire decides detected vs silent.
  Rng rng(derive(config.seed, 0x40C, rate));
  const auto node = [&] {
    return static_cast<std::size_t>(rng.uniform_int(
        0, static_cast<std::int64_t>(noc.nodes() - 1)));
  };
  for (std::size_t p = 0; p < config.noc_packets; ++p) {
    NocPacket pkt;
    pkt.src = node();
    pkt.dst = node();
    pkt.flits = 2 + static_cast<std::size_t>(rng.uniform_int(0, 6));
    pkt.fingerprint = derive(config.seed, 0x40CF17, rate, p);
    (void)noc.inject(pkt);
  }
  noc.run_to_completion();

  for (const NocDelivery& d : noc.deliveries()) {
    if (!d.corrupted())
      tally.diff.add(DiffOutcome::kClean);
    else if (d.undetected_corrupted_flits == 0)
      tally.diff.add(DiffOutcome::kDetected);
    else
      tally.diff.add(DiffOutcome::kSilent);
  }
  return record_campaign(std::move(tally));
}

std::vector<CampaignTally> run_full_campaign(const CampaignConfig& config) {
  std::vector<CampaignTally> sweep;
  for (const double rate : config.rates) sweep.push_back(run_ecc_campaign(config, rate));
  for (const double rate : config.rates)
    sweep.push_back(run_imply_adder_campaign(config, rate, false));
  for (const double rate : config.rates)
    sweep.push_back(run_imply_adder_campaign(config, rate, true));
  for (const double rate : config.rates)
    sweep.push_back(run_tc_adder_campaign(config, rate));
  for (const double rate : config.rates) sweep.push_back(run_cam_campaign(config, rate));
  for (const double rate : config.rates)
    sweep.push_back(run_readout_campaign(config, rate));
  for (const double rate : config.rates) sweep.push_back(run_dna_campaign(config, rate));
  for (const double rate : config.rates)
    sweep.push_back(run_parallel_add_campaign(config, rate));
  for (const double rate : config.rates)
    sweep.push_back(run_noc_link_campaign(config, rate));
  return sweep;
}

std::string campaign_json(const CampaignConfig& config,
                          const std::vector<CampaignTally>& sweep,
                          const CampaignJsonExtra& extra) {
  std::uint64_t zero_rate_silent = 0;
  std::uint64_t single_injected = 0, single_corrected = 0;
  std::uint64_t double_injected = 0, double_detected = 0;
  for (const CampaignTally& t : sweep) {
    if (t.rate == 0.0) zero_rate_silent += t.diff.silent;
    single_injected += t.single_bit_injected;
    single_corrected += t.single_bit_corrected;
    double_injected += t.double_bit_injected;
    double_detected += t.double_bit_detected;
  }

  telemetry::JsonWriter w;
  w.begin_object();
  w.key("schema").value("memcim-bench-v1");
  w.key("bench").value("fault_campaign");
  if (extra) extra(w);
  w.key("seed").value(config.seed);
  w.key("rates").begin_array();
  for (const double rate : config.rates) w.value(rate);
  w.end_array();
  w.key("sweep").begin_array();
  for (const CampaignTally& t : sweep) {
    w.begin_object();
    w.key("target").value(t.target);
    w.key("rate").value(t.rate);
    w.key("trials").value(t.diff.trials);
    w.key("clean").value(t.diff.clean);
    w.key("corrected").value(t.diff.corrected);
    w.key("detected").value(t.diff.detected);
    w.key("silent").value(t.diff.silent);
    w.key("armed_faults").value(t.armed_faults);
    if (t.target == "ecc_memory") {
      w.key("single_bit").begin_object();
      w.key("injected").value(t.single_bit_injected);
      w.key("corrected").value(t.single_bit_corrected);
      w.end_object();
      w.key("double_bit").begin_object();
      w.key("injected").value(t.double_bit_injected);
      w.key("detected").value(t.double_bit_detected);
      w.end_object();
    }
    w.end_object();
  }
  w.end_array();
  w.key("acceptance").begin_object();
  w.key("zero_rate_silent").value(zero_rate_silent);
  w.key("ecc_single_bit").begin_object();
  w.key("injected").value(single_injected);
  w.key("corrected").value(single_corrected);
  w.end_object();
  w.key("ecc_double_bit").begin_object();
  w.key("injected").value(double_injected);
  w.key("detected").value(double_detected);
  w.end_object();
  w.key("pass").value(zero_rate_silent == 0 &&
                      single_injected == single_corrected &&
                      double_injected == double_detected);
  w.end_object();
  w.end_object();
  return w.str();
}

}  // namespace memcim
