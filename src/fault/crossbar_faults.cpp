#include "fault/crossbar_faults.h"

#include "common/error.h"

namespace memcim {

namespace {

/// Walk the armed faults once, translating each stuck/drift entry into
/// a call on the structure-specific setter.
template <typename Stuck, typename Drift>
CrossbarFaultSummary walk(const FaultPlan& plan, std::size_t sites,
                          Stuck&& stuck, Drift&& drift) {
  MEMCIM_CHECK_MSG(plan.population() >= sites,
                   "fault plan population smaller than the structure");
  CrossbarFaultSummary summary;
  for (const ArmedFault& f : plan.armed()) {
    if (f.site >= sites) continue;
    switch (f.kind) {
      case FaultKind::kStuckAtLrs:
        stuck(f.site, true);
        ++summary.stuck_lrs;
        break;
      case FaultKind::kStuckAtHrs:
        stuck(f.site, false);
        ++summary.stuck_hrs;
        break;
      case FaultKind::kDrift:
        drift(f.site, f.magnitude);
        ++summary.drifted;
        break;
      case FaultKind::kWriteFail:
      case FaultKind::kReadDisturb:
        // Event faults have no static application; the consumer draws
        // them per operation through the plan.
        break;
    }
  }
  return summary;
}

}  // namespace

CrossbarFaultSummary apply_fault_plan(CrossbarArray& array,
                                      const FaultPlan& plan) {
  const std::size_t cols = array.cols();
  return walk(
      plan, array.rows() * cols,
      [&](std::size_t site, bool lrs) {
        array.device(site / cols, site % cols).set_state(lrs ? 1.0 : 0.0);
      },
      [&](std::size_t site, double magnitude) {
        Device& d = array.device(site / cols, site % cols);
        const double x = d.state();
        d.set_state(x + magnitude * (0.5 - x));
      });
}

CrossbarFaultSummary apply_fault_plan(CrsMemory& memory,
                                      const FaultPlan& plan) {
  const std::size_t cols = memory.cols();
  return walk(
      plan, memory.rows() * cols,
      [&](std::size_t site, bool lrs) {
        memory.cell_mut(site / cols, site % cols)
            .force_stuck(lrs ? CrsState::kOne : CrsState::kZero);
      },
      [](std::size_t, double) {});  // behavioural cells carry no analog state
}

CrossbarFaultSummary apply_fault_plan(EccCrsMemory& memory,
                                      const FaultPlan& plan) {
  return walk(
      plan, memory.rows() * kEccCodewordBits,
      [&](std::size_t site, bool lrs) {
        memory.inject_stuck(site / kEccCodewordBits, site % kEccCodewordBits,
                            lrs);
      },
      [](std::size_t, double) {});
}

CrossbarFaultSummary apply_fault_plan(CrsCam& cam, const FaultPlan& plan) {
  const std::size_t bits = cam.config().word_bits;
  return walk(
      plan, cam.config().rows * bits,
      [&](std::size_t site, bool lrs) {
        cam.inject_stuck(site / bits, site % bits, lrs);
      },
      [](std::size_t, double) {});
}

CrossbarFaultSummary apply_fault_plan(std::vector<CrsTcAdder>& farm,
                                      const FaultPlan& plan) {
  if (farm.empty()) return {};
  const std::size_t per_adder = farm.front().fault_sites();
  return walk(
      plan, farm.size() * per_adder,
      [&](std::size_t site, bool lrs) {
        farm[site / per_adder].inject_stuck(site % per_adder, lrs);
      },
      [](std::size_t, double) {});
}

}  // namespace memcim
