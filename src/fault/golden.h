// Golden-model differential harness.
//
// Every reliability claim in this subsystem is measured the same way:
// run the identical computation on a *golden* substrate (ideal
// semantics, no faults armed) and on the subject substrate (faults
// armed), then classify the divergence.  The taxonomy matters more
// than the count — an error the structure *reports* (ECC uncorrectable
// flag) is qualitatively different from one it silently returns:
//
//   kClean     — outputs identical, nothing flagged,
//   kCorrected — outputs identical because the structure repaired the
//                fault (ECC single-bit correction),
//   kDetected  — outputs differ or are withheld, but the structure
//                raised a flag (ECC double-bit detection),
//   kSilent    — outputs differ and nothing was flagged: silent data
//                corruption, the failure mode campaigns exist to find.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "logic/fabric.h"
#include "logic/program.h"

namespace memcim {

enum class DiffOutcome : std::uint8_t {
  kClean,
  kCorrected,
  kDetected,
  kSilent,
};

[[nodiscard]] const char* to_string(DiffOutcome o);

/// Tally of differential trials, by outcome.
struct DiffTally {
  std::uint64_t trials = 0;
  std::uint64_t clean = 0;
  std::uint64_t corrected = 0;
  std::uint64_t detected = 0;
  std::uint64_t silent = 0;

  void add(DiffOutcome outcome);
  void merge(const DiffTally& other);
  [[nodiscard]] double silent_fraction() const {
    return trials == 0 ? 0.0
                       : static_cast<double>(silent) /
                             static_cast<double>(trials);
  }
};

/// Replay the first `length` instructions of `program` on `fabric`
/// (fresh register window, inputs loaded first) and return the full
/// register-file state — the observable the shrinker compares.
[[nodiscard]] std::vector<bool> run_program_prefix(
    const CimProgram& program, Fabric& fabric,
    const std::vector<bool>& inputs, std::size_t length);

/// Factory for a fabric under test; called once per prefix replay so
/// each run starts from power-on state.
using FabricFactory = std::function<std::unique_ptr<Fabric>()>;

/// Divergence shrinking: the smallest prefix length L (0 ≤ L ≤
/// program length, L = 0 meaning the input load alone) after which the
/// reference and subject register files already differ — i.e. the
/// first instruction that matters to the failure.  nullopt when the
/// full program agrees.  Linear scan from the shortest prefix, so the
/// result is exactly the minimal failing prefix even when later
/// instructions would re-mask the divergence.
[[nodiscard]] std::optional<std::size_t> minimal_failing_prefix(
    const CimProgram& program, const std::vector<bool>& inputs,
    const FabricFactory& make_reference, const FabricFactory& make_subject);

/// One differential program run: golden fabric vs subject fabric,
/// classified on the final output bit (kClean / kSilent — raw fabrics
/// have no detection channel).
[[nodiscard]] DiffOutcome diff_program_run(const CimProgram& program,
                                           const std::vector<bool>& inputs,
                                           Fabric& reference, Fabric& subject);

}  // namespace memcim
