#include "fault/golden.h"

#include "common/error.h"

namespace memcim {

const char* to_string(DiffOutcome o) {
  switch (o) {
    case DiffOutcome::kClean: return "clean";
    case DiffOutcome::kCorrected: return "corrected";
    case DiffOutcome::kDetected: return "detected";
    case DiffOutcome::kSilent: return "silent";
  }
  return "?";
}

void DiffTally::add(DiffOutcome outcome) {
  ++trials;
  switch (outcome) {
    case DiffOutcome::kClean: ++clean; break;
    case DiffOutcome::kCorrected: ++corrected; break;
    case DiffOutcome::kDetected: ++detected; break;
    case DiffOutcome::kSilent: ++silent; break;
  }
}

void DiffTally::merge(const DiffTally& other) {
  trials += other.trials;
  clean += other.clean;
  corrected += other.corrected;
  detected += other.detected;
  silent += other.silent;
}

std::vector<bool> run_program_prefix(const CimProgram& program, Fabric& fabric,
                                     const std::vector<bool>& inputs,
                                     std::size_t length) {
  // One replay core for goldens, the run_program* entry points, and the
  // compiler's reference interpreter: all three go through
  // replay_program_window, so their semantics cannot drift.
  const Reg base = allocate_program_window(fabric, program.registers);
  (void)replay_program_window(program, fabric, base, inputs, length);
  std::vector<bool> state(program.registers);
  for (std::size_t i = 0; i < program.registers; ++i)
    state[i] = fabric.read(base + i);
  return state;
}

std::optional<std::size_t> minimal_failing_prefix(
    const CimProgram& program, const std::vector<bool>& inputs,
    const FabricFactory& make_reference, const FabricFactory& make_subject) {
  for (std::size_t length = 0; length <= program.length(); ++length) {
    const auto ref_fabric = make_reference();
    const auto sub_fabric = make_subject();
    MEMCIM_CHECK_MSG(ref_fabric && sub_fabric, "fabric factory returned null");
    const std::vector<bool> ref =
        run_program_prefix(program, *ref_fabric, inputs, length);
    const std::vector<bool> sub =
        run_program_prefix(program, *sub_fabric, inputs, length);
    if (ref != sub) return length;
  }
  return std::nullopt;
}

DiffOutcome diff_program_run(const CimProgram& program,
                             const std::vector<bool>& inputs,
                             Fabric& reference, Fabric& subject) {
  const bool expect = run_program(program, reference, inputs);
  const bool got = run_program(program, subject, inputs);
  return expect == got ? DiffOutcome::kClean : DiffOutcome::kSilent;
}

}  // namespace memcim
