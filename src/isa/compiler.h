// The compile-once/replay-many driver: pass pipeline + packed lowering.
//
// `compile` takes recorded microcode and produces a CompiledProgram
// carrying BOTH executable forms:
//
//   * `source` / `packed_source` — the recorded program unchanged, for
//     book-exact replay (bitwise-identical outputs AND cost books vs
//     the legacy scalar walk, the packed_adder discipline from PR 5),
//   * `optimized` / `packed_optimized` — the pass-pipeline output, for
//     minimum-pulse replay with its own exactly-reconciled books.
//
// Both forms come with ready PackedRunOptions (cost quanta + the
// window-packing block grain), so call sites replay with one call.
#pragma once

#include "isa/passes.h"
#include "logic/packed.h"
#include "logic/program.h"

namespace memcim::isa {

/// Cost quanta of the fabric the program will replay against, plus the
/// pipeline switch.  These feed the cache key: programs compiled for
/// different fabrics (e.g. CRS 2-step IMP) are distinct artifacts.
struct CompileOptions {
  LogicCostModel cost{};
  std::uint64_t set_step_cost = 1;
  std::uint64_t imply_step_cost = 1;
  bool optimize = true;  ///< run the pass pipeline (false: source only)
};

struct CompiledProgram {
  CimProgram source;
  CimProgram optimized;          ///< == source when options.optimize off
  PackedProgram packed_source;
  PackedProgram packed_optimized;
  PassStats stats;
  PackedRunOptions run_source;     ///< quanta + grain for packed_source
  PackedRunOptions run_optimized;  ///< quanta + grain for packed_optimized
};

/// Validate, optimize (when asked), lower both forms for the packed
/// engine, and pick the window-packing grain.  Books the compiler.*
/// telemetry counters (see docs/TELEMETRY.md).
[[nodiscard]] CompiledProgram compile(const CimProgram& source,
                                      const CompileOptions& options = {});

}  // namespace memcim::isa
