#include "isa/kernels.h"

#include <span>

#include "common/error.h"
#include "logic/adder.h"
#include "logic/comparator.h"
#include "logic/gates.h"
#include "logic/packed.h"

namespace memcim::isa {

namespace {

/// Shared replay plumbing: pick the requested form, run packed, fill
/// the books from the packed result (already exactly reconciled with a
/// scalar run_program_simd of the same program).
PackedRunResult replay_kernel(const CompiledProgram& program,
                              bool optimized,
                              const std::vector<std::vector<bool>>& windows,
                              CompiledRunBooks& books) {
  const PackedProgram& packed =
      optimized ? program.packed_optimized : program.packed_source;
  const PackedRunOptions& options =
      optimized ? program.run_optimized : program.run_source;
  PackedRunResult result = run_program_packed(packed, windows, options);
  books.latency = result.latency;
  books.energy = result.energy;
  books.writes = result.writes;
  books.pulses_per_window = result.steps_per_window;
  return result;
}

}  // namespace

std::shared_ptr<const CompiledProgram> cached_word_equality(
    std::size_t bits, const CompileOptions& options) {
  MEMCIM_CHECK_MSG(bits >= 1, "word equality needs >= 1 bit");
  ProgramKey key;
  key.workload = "word_equality";
  key.shape = bits;
  key.fabric_sig = fabric_signature(options);
  key.optimize = options.optimize;
  return ProgramCache::global().get_or_compile(
      key,
      [bits] {
        return record_program(2 * bits, [bits](Fabric& f,
                                               const std::vector<Reg>& in) {
          const std::span<const Reg> a(in.data(), bits);
          const std::span<const Reg> b(in.data() + bits, bits);
          return word_equality(f, a, b);
        });
      },
      options);
}

std::shared_ptr<const CompiledProgram> cached_masked_equality(
    std::size_t bits, const CompileOptions& options) {
  MEMCIM_CHECK_MSG(bits >= 1, "masked equality needs >= 1 bit");
  ProgramKey key;
  key.workload = "masked_equality";
  key.shape = bits;
  key.fabric_sig = fabric_signature(options);
  key.optimize = options.optimize;
  return ProgramCache::global().get_or_compile(
      key,
      [bits] {
        return record_program(
            3 * bits + 1, [bits](Fabric& f, const std::vector<Reg>& in) {
              // Inputs: key | value | care | valid.
              Reg acc = in[3 * bits];  // valid gates the whole row
              for (std::size_t i = 0; i < bits; ++i) {
                const Reg eq = gate_xnor(f, in[i], in[bits + i]);
                // care => equal in ONE extra pulse: eq <- !care | eq.
                f.imply(in[2 * bits + i], eq);
                acc = gate_and(f, acc, eq);
              }
              return acc;
            });
      },
      options);
}

std::shared_ptr<const CompiledProgram> cached_ripple_adder(
    std::size_t bits, const CompileOptions& options) {
  MEMCIM_CHECK_MSG(bits >= 1 && bits <= 63, "adder width must be 1..63 bits");
  ProgramKey key;
  key.workload = "ripple_adder";
  key.shape = bits;
  key.fabric_sig = fabric_signature(options);
  key.optimize = options.optimize;
  return ProgramCache::global().get_or_compile(
      key,
      [bits] {
        return record_program_multi(
            2 * bits, [bits](Fabric& f, const std::vector<Reg>& in) {
              const std::span<const Reg> a(in.data(), bits);
              const std::span<const Reg> b(in.data() + bits, bits);
              const RippleAdderResult r = ripple_adder(f, a, b);
              std::vector<Reg> outs = r.sum;
              outs.push_back(r.carry_out);
              return outs;
            });
      },
      options);
}

CompiledCamBank::CompiledCamBank(std::size_t rows, std::size_t word_bits,
                                 const CompileOptions& options,
                                 bool optimize_replay)
    : word_bits_(word_bits),
      optimize_replay_(optimize_replay),
      program_(cached_masked_equality(word_bits, options)),
      value_(rows, std::vector<bool>(word_bits, false)),
      care_(rows, std::vector<bool>(word_bits, false)),
      valid_(rows, false) {
  MEMCIM_CHECK_MSG(rows >= 1, "CAM bank needs >= 1 row");
}

void CompiledCamBank::write_row(std::size_t row,
                                const std::vector<bool>& word) {
  MEMCIM_CHECK_MSG(row < valid_.size(), "CAM row out of range");
  MEMCIM_CHECK_MSG(word.size() == word_bits_, "CAM word width mismatch");
  value_[row] = word;
  care_[row].assign(word_bits_, true);
  valid_[row] = true;
}

void CompiledCamBank::write_row_ternary(std::size_t row,
                                        const std::vector<CamBit>& word) {
  MEMCIM_CHECK_MSG(row < valid_.size(), "CAM row out of range");
  MEMCIM_CHECK_MSG(word.size() == word_bits_, "CAM word width mismatch");
  for (std::size_t i = 0; i < word_bits_; ++i) {
    value_[row][i] = word[i] == CamBit::kOne;
    care_[row][i] = word[i] != CamBit::kDontCare;
  }
  valid_[row] = true;
}

void CompiledCamBank::erase_row(std::size_t row) {
  MEMCIM_CHECK_MSG(row < valid_.size(), "CAM row out of range");
  valid_[row] = false;
}

CamBankSearchResult CompiledCamBank::search(const std::vector<bool>& key) {
  MEMCIM_CHECK_MSG(key.size() == word_bits_, "CAM key width mismatch");
  const std::size_t rows = valid_.size();
  std::vector<std::vector<bool>> windows(rows);
  for (std::size_t r = 0; r < rows; ++r) {
    std::vector<bool>& in = windows[r];
    in.reserve(3 * word_bits_ + 1);
    in.insert(in.end(), key.begin(), key.end());
    in.insert(in.end(), value_[r].begin(), value_[r].end());
    in.insert(in.end(), care_[r].begin(), care_[r].end());
    in.push_back(valid_[r]);
  }
  CamBankSearchResult out;
  const PackedRunResult result =
      replay_kernel(*program_, optimize_replay_, windows, out.books);
  for (std::size_t r = 0; r < rows; ++r)
    if (result.outputs[r]) out.matching_rows.push_back(r);
  return out;
}

CompiledAddResult run_compiled_add(std::size_t width,
                                   const std::vector<std::uint64_t>& op_a,
                                   const std::vector<std::uint64_t>& op_b,
                                   const CompileOptions& options,
                                   bool optimize_replay) {
  MEMCIM_CHECK_MSG(op_a.size() == op_b.size(),
                   "operand batches must be the same size");
  MEMCIM_CHECK_MSG(!op_a.empty(), "compiled add needs >= 1 operand pair");
  const std::shared_ptr<const CompiledProgram> program =
      cached_ripple_adder(width, options);

  std::vector<std::vector<bool>> windows(op_a.size());
  for (std::size_t i = 0; i < op_a.size(); ++i) {
    std::vector<bool>& in = windows[i];
    in.reserve(2 * width);
    for (std::size_t bit = 0; bit < width; ++bit)
      in.push_back(((op_a[i] >> bit) & 1u) != 0);
    for (std::size_t bit = 0; bit < width; ++bit)
      in.push_back(((op_b[i] >> bit) & 1u) != 0);
  }

  CompiledAddResult out;
  const PackedRunResult result =
      replay_kernel(*program, optimize_replay, windows, out.books);
  out.sums.reserve(op_a.size());
  for (std::size_t i = 0; i < op_a.size(); ++i) {
    std::uint64_t sum = 0;
    const std::vector<bool>& bits = result.wide[i];
    for (std::size_t bit = 0; bit < bits.size(); ++bit)
      if (bits[bit]) sum |= std::uint64_t{1} << bit;
    out.sums.push_back(sum);
  }
  return out;
}

}  // namespace memcim::isa
