// Semantics-preserving optimization passes over CimProgram microcode.
//
// Every pass preserves the replay contract: a fresh window (registers
// start at logic 0), inputs loaded into registers [0, inputs), result
// registers read at the end.  Under that contract the passes prove
// their rewrites from three IMP facts:
//
//   * the window starts all-zero, so scratch state is known until the
//     first data-dependent write,
//   * imply is monotone (q only ever grows toward 1), so an
//     already-established implication q >= !p stays established until
//     a SET lowers p or q — adjacent redundant IMP pulses fuse away,
//   * a pulse whose register is never read again (transitively) is
//     dead and can be eliminated.
//
// Pass pipeline (optimize_program): known-state folding and IMP fusion
// alternate with dead-pulse elimination to a fixpoint, then liveness
// register compaction renames the window so programs fit narrower
// crossbar windows.  Compaction never trades a pulse for a row unless
// forced: zero-reliant registers keep fresh rows (zero is free there),
// and only a row-budgeted window recycles them with an explicit SET0
// clear.  Differential tests in tests/isa/ hold every pass bitwise-
// equivalent to the unoptimized replay on all three fabrics.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>

#include "logic/packed.h"
#include "logic/program.h"

namespace memcim::isa {

/// What the pipeline did to a program (per-pass pulse tallies).
struct PassStats {
  std::size_t known_state_removed = 0;  ///< const-folded / no-op pulses
  std::size_t implications_fused = 0;   ///< redundant IMP pulses dropped
  std::size_t strength_reduced = 0;     ///< IMP rewritten to SET1
  std::size_t dead_removed = 0;         ///< never-observed pulses
  std::size_t clears_inserted = 0;      ///< SET0 added for recycled rows
  std::size_t rounds = 0;               ///< fold/DCE iterations to fixpoint
  std::size_t pulses_before = 0;
  std::size_t pulses_after = 0;
  std::size_t registers_before = 0;
  std::size_t registers_after = 0;

  [[nodiscard]] std::size_t pulses_removed() const {
    return pulses_before > pulses_after ? pulses_before - pulses_after : 0;
  }
  [[nodiscard]] std::size_t registers_saved() const {
    return registers_before > registers_after
               ? registers_before - registers_after
               : 0;
  }
};

/// Known-state folding + IMP fusion.  Tracks the 0/1/unknown lattice of
/// every register from the fresh-window state, drops pulses that cannot
/// change state (SET to the held value, IMP into a known-1 target, IMP
/// from a known-1 source), strength-reduces IMP from a known-0 source
/// to SET1, and fuses IMP pulses whose implication is already
/// established and not since invalidated.
[[nodiscard]] CimProgram known_state_pass(const CimProgram& program,
                                          PassStats* stats = nullptr);

/// Dead-pulse elimination: backward liveness from the result registers;
/// pulses writing registers that are never subsequently read (by an IMP
/// operand or the final result read) are dropped.
[[nodiscard]] CimProgram dead_pulse_elimination(const CimProgram& program,
                                                PassStats* stats = nullptr);

/// No row budget: the window may keep one fresh row per zero-reliant
/// register (see compact_registers).
inline constexpr std::size_t kNoRowBudget =
    std::numeric_limits<std::size_t>::max();

/// Liveness-based register compaction (crossbar-row allocation):
/// renames registers onto a compact window via linear scan over live
/// intervals.  Inputs keep their ABI slots [0, inputs).  Pulses beat
/// rows: a register whose first access *reads* fresh-row zero stays on
/// a fresh row (a fresh row's zero is free, a recycled row's zero
/// costs a SET0 pulse), while fully-defined registers recycle expired
/// rows.  Passing `max_rows` models a row-constrained crossbar window:
/// once the window is exhausted zero-reliant registers recycle too,
/// with the explicit SET0 clear inserted; throws Error if the live
/// intervals cannot fit the budget at all.
[[nodiscard]] CimProgram compact_registers(
    const CimProgram& program, PassStats* stats = nullptr,
    std::size_t max_rows = kNoRowBudget);

/// Window-packing decision for PackedFabric replay: lane blocks per
/// thread-pool task, sized so short programs amortize the pool hand-off
/// while long programs split at block grain for load balance.
[[nodiscard]] std::size_t packing_block_grain(const PackedProgram& compiled);

/// The full pipeline: (known_state → DCE) to fixpoint, then register
/// compaction.  Validates the result.
[[nodiscard]] CimProgram optimize_program(const CimProgram& program,
                                          PassStats* stats = nullptr);

}  // namespace memcim::isa
