#include "isa/compiler.h"

#include "isa/isa.h"
#include "telemetry/telemetry.h"

namespace memcim::isa {

namespace {

struct CompilerMetrics {
  telemetry::Counter& compiles;
  telemetry::Counter& pulses_removed;
  telemetry::Counter& registers_saved;
  telemetry::Counter& clears_inserted;
  CompilerMetrics()
      : compiles(telemetry::Registry::global().counter("compiler.compiles")),
        pulses_removed(telemetry::Registry::global().counter(
            "compiler.pulses_removed")),
        registers_saved(telemetry::Registry::global().counter(
            "compiler.registers_saved")),
        clears_inserted(telemetry::Registry::global().counter(
            "compiler.clears_inserted")) {}
};

CompilerMetrics& compiler_metrics() {
  static CompilerMetrics m;
  return m;
}

PackedRunOptions run_options_for(const CompileOptions& options,
                                 const PackedProgram& compiled) {
  PackedRunOptions run;
  run.cost = options.cost;
  run.set_step_cost = options.set_step_cost;
  run.imply_step_cost = options.imply_step_cost;
  run.block_grain = packing_block_grain(compiled);
  return run;
}

}  // namespace

CompiledProgram compile(const CimProgram& source,
                        const CompileOptions& options) {
  validate_program(source);
  CompiledProgram out;
  out.source = source;
  out.stats.pulses_before = source.instructions.size();
  out.stats.registers_before = source.registers;
  if (options.optimize) {
    out.optimized = optimize_program(source, &out.stats);
  } else {
    out.optimized = source;
    out.stats.pulses_after = out.stats.pulses_before;
    out.stats.registers_after = out.stats.registers_before;
  }
  out.packed_source = compile_program(out.source);
  out.packed_optimized = compile_program(out.optimized);
  out.run_source = run_options_for(options, out.packed_source);
  out.run_optimized = run_options_for(options, out.packed_optimized);
  if (telemetry::enabled()) {
    CompilerMetrics& m = compiler_metrics();
    m.compiles.add(1);
    m.pulses_removed.add(out.stats.pulses_removed());
    m.registers_saved.add(out.stats.registers_saved());
    m.clears_inserted.add(out.stats.clears_inserted);
  }
  return out;
}

}  // namespace memcim::isa
