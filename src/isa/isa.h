// The IMPLY ISA: a concrete binary format for CimProgram microcode.
//
// The paper's CMOS controller (Section III.A) replays stored microcode
// against the crossbar; Splittgerber et al. (PAPERS.md) define an ISA
// for exactly this IMPLY-based processing-in-array layer.  This module
// pins our in-memory IR to a versioned wire format so programs can be
// cached, shipped between controller and tiles, and round-tripped
// through tooling:
//
//   * `validate_program` — structural checks shared by every consumer,
//   * `encode_program` / `decode_program` — 32-bit little-endian words,
//   * `encode_program_bytes` / `decode_program_bytes` — byte stream.
//
// Instruction word layout (one u32 per instruction):
//
//   bits 31..28  opcode (0 = SET0, 1 = SET1, 2 = IMP)
//   bits 27..14  register a (14 bits)
//   bits 13..0   register b (14 bits, zero for SET0/SET1)
//
// The 14-bit register fields cap a program window at 16384 rows —
// far above any recorded kernel (a 64-bit word-equality uses ~600) and
// matching the paper's per-tile crossbar scale.
#pragma once

#include <cstdint>
#include <vector>

#include "logic/program.h"

namespace memcim::isa {

/// Wire-format magic ("MCIM") and current version.
inline constexpr std::uint32_t kMagic = 0x4D43'494Du;
inline constexpr std::uint32_t kVersion = 1;

/// Hard ISA limit from the 14-bit register fields.
inline constexpr std::size_t kMaxRegisters = std::size_t{1} << 14;

/// Number of u32 header words before the output list.
inline constexpr std::size_t kHeaderWords = 6;

/// Structural validation shared by the encoder, the decoder, the
/// assembler and every optimization pass: register window bounds,
/// input arity, result registers in range, every instruction operand in
/// range.  Throws Error with a diagnostic on the first violation.
void validate_program(const CimProgram& program);

/// Encode to 32-bit words: header (magic, version, registers, inputs,
/// output count, instruction count), then the result registers, then
/// one word per instruction.  Validates first.
[[nodiscard]] std::vector<std::uint32_t> encode_program(
    const CimProgram& program);

/// Decode and validate a word stream produced by encode_program.
/// Throws Error on a truncated, corrupt or out-of-range image.
[[nodiscard]] CimProgram decode_program(
    const std::vector<std::uint32_t>& words);

/// Byte-stream flavour (little-endian u32s) for file/wire transport.
[[nodiscard]] std::vector<std::uint8_t> encode_program_bytes(
    const CimProgram& program);
[[nodiscard]] CimProgram decode_program_bytes(
    const std::vector<std::uint8_t>& bytes);

}  // namespace memcim::isa
