// The compiled-program cache: compile once, replay many.
//
// The PR-5 packed_adder fast path hand-cached one kernel; this cache
// generalizes it to every recorded workload.  Artifacts are keyed by
// (workload name, shape, fabric signature, optimize flag) — the same
// kernel recorded for a different word width, or compiled for a fabric
// with different step quanta, is a different artifact.  Lookups and
// fills book `compiler.cache.hits` / `compiler.cache.misses`, so the
// serving stack's hit rate is observable (docs/TELEMETRY.md).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "isa/compiler.h"

namespace memcim::isa {

/// Cache key.  `shape` packs the workload's geometry (e.g. word bits);
/// `fabric_sig` fingerprints the replay fabric's cost quanta — use
/// fabric_signature() so every call site derives it the same way.
struct ProgramKey {
  std::string workload;
  std::uint64_t shape = 0;
  std::uint64_t fabric_sig = 0;
  bool optimize = true;

  [[nodiscard]] bool operator==(const ProgramKey& other) const {
    return workload == other.workload && shape == other.shape &&
           fabric_sig == other.fabric_sig && optimize == other.optimize;
  }
};

struct ProgramKeyHash {
  [[nodiscard]] std::size_t operator()(const ProgramKey& key) const;
};

/// FNV-1a fingerprint of the compile options' cost quanta (step costs
/// and the Table 1 time/energy quanta), so programs compiled for
/// IdealFabric and CrsFabric never collide.
[[nodiscard]] std::uint64_t fabric_signature(const CompileOptions& options);

/// Thread-safe keyed cache of compiled programs.  `get_or_compile`
/// holds the cache lock across a miss's record+compile so a key's
/// builder runs exactly once even under concurrent lookups.
class ProgramCache {
 public:
  /// The process-wide cache used by the workload/serving wiring.
  [[nodiscard]] static ProgramCache& global();

  using Builder = std::function<CimProgram()>;

  /// Return the cached artifact for `key`, or record (via `builder`),
  /// compile with `options` and cache it.
  [[nodiscard]] std::shared_ptr<const CompiledProgram> get_or_compile(
      const ProgramKey& key, const Builder& builder,
      const CompileOptions& options = {});

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::uint64_t hits() const { return hits_; }
  [[nodiscard]] std::uint64_t misses() const { return misses_; }
  void clear();

 private:
  mutable std::mutex mutex_;
  std::unordered_map<ProgramKey, std::shared_ptr<const CompiledProgram>,
                     ProgramKeyHash>
      entries_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace memcim::isa
