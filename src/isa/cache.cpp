#include "isa/cache.h"

#include <bit>

#include "telemetry/telemetry.h"

namespace memcim::isa {

namespace {

constexpr std::uint64_t kFnvOffset = 0xCBF2'9CE4'8422'2325ull;
constexpr std::uint64_t kFnvPrime = 0x0000'0100'0000'01B3ull;

std::uint64_t fnv_mix(std::uint64_t hash, std::uint64_t value) {
  for (std::size_t i = 0; i < 8; ++i) {
    hash ^= (value >> (8 * i)) & 0xFFu;
    hash *= kFnvPrime;
  }
  return hash;
}

struct CacheMetrics {
  telemetry::Counter& hits;
  telemetry::Counter& misses;
  CacheMetrics()
      : hits(telemetry::Registry::global().counter("compiler.cache.hits")),
        misses(
            telemetry::Registry::global().counter("compiler.cache.misses")) {}
};

CacheMetrics& cache_metrics() {
  static CacheMetrics m;
  return m;
}

}  // namespace

std::size_t ProgramKeyHash::operator()(const ProgramKey& key) const {
  std::uint64_t hash = kFnvOffset;
  for (const char c : key.workload)
    hash = fnv_mix(hash, static_cast<std::uint64_t>(
                             static_cast<unsigned char>(c)));
  hash = fnv_mix(hash, key.shape);
  hash = fnv_mix(hash, key.fabric_sig);
  hash = fnv_mix(hash, key.optimize ? 1u : 0u);
  return static_cast<std::size_t>(hash);
}

std::uint64_t fabric_signature(const CompileOptions& options) {
  std::uint64_t hash = kFnvOffset;
  hash = fnv_mix(hash, options.set_step_cost);
  hash = fnv_mix(hash, options.imply_step_cost);
  hash = fnv_mix(hash,
                 std::bit_cast<std::uint64_t>(options.cost.t_step.value()));
  hash = fnv_mix(hash,
                 std::bit_cast<std::uint64_t>(options.cost.e_write.value()));
  return hash;
}

ProgramCache& ProgramCache::global() {
  static ProgramCache cache;
  return cache;
}

std::shared_ptr<const CompiledProgram> ProgramCache::get_or_compile(
    const ProgramKey& key, const Builder& builder,
    const CompileOptions& options) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(key);
  if (it != entries_.end()) {
    ++hits_;
    if (telemetry::enabled()) cache_metrics().hits.add(1);
    return it->second;
  }
  ++misses_;
  if (telemetry::enabled()) cache_metrics().misses.add(1);
  auto compiled = std::make_shared<const CompiledProgram>(
      compile(builder(), options));
  entries_.emplace(key, compiled);
  return compiled;
}

std::size_t ProgramCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

void ProgramCache::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  entries_.clear();
  hits_ = 0;
  misses_ = 0;
}

}  // namespace memcim::isa
