// Textual assembler / disassembler for the IMPLY ISA.
//
// The text form is the human-readable twin of the binary format in
// isa.h — tooling, docs and tests round-trip programs through it:
//
//   ; 2-input AND, recorded from the gate library
//   .registers 7
//   .inputs 2
//   .output r6          ; or: .outputs r4 r5 r6 (multi-bit results)
//   SET0 r2
//   IMP  r0 r2          ; r2 <- !r0 | r2
//   SET1 r6
//
// One instruction per line; `;` starts a comment; directives may appear
// in any order but must precede the first instruction.
#pragma once

#include <string>

#include "logic/program.h"

namespace memcim::isa {

/// Render a validated program as assembly text (ends with a newline).
[[nodiscard]] std::string disassemble(const CimProgram& program);

/// Parse assembly text back into a validated program.  Throws Error
/// with a line-numbered diagnostic on malformed input.
[[nodiscard]] CimProgram assemble(const std::string& text);

}  // namespace memcim::isa
