#include "isa/isa.h"

#include "common/error.h"

namespace memcim::isa {

namespace {

constexpr std::uint32_t kRegBits = 14;
constexpr std::uint32_t kRegMask = (1u << kRegBits) - 1u;

std::uint32_t encode_instruction(const CimInstruction& inst) {
  const auto op = static_cast<std::uint32_t>(inst.op);
  const auto a = static_cast<std::uint32_t>(inst.a);
  const auto b = static_cast<std::uint32_t>(inst.b);
  return (op << (2 * kRegBits)) | (a << kRegBits) | b;
}

CimInstruction decode_instruction(std::uint32_t word, std::size_t index) {
  const std::uint32_t op = word >> (2 * kRegBits);
  MEMCIM_CHECK_MSG(op <= static_cast<std::uint32_t>(CimOp::kImply),
                   "instruction " << index << ": invalid opcode " << op);
  CimInstruction inst;
  inst.op = static_cast<CimOp>(op);
  inst.a = (word >> kRegBits) & kRegMask;
  inst.b = word & kRegMask;
  MEMCIM_CHECK_MSG(inst.op == CimOp::kImply || inst.b == 0,
                   "instruction " << index << ": SET with nonzero b field");
  return inst;
}

}  // namespace

void validate_program(const CimProgram& program) {
  MEMCIM_CHECK_MSG(program.registers > 0, "program has no registers");
  MEMCIM_CHECK_MSG(program.registers <= kMaxRegisters,
                   "program window of " << program.registers
                                        << " registers exceeds the ISA limit "
                                        << kMaxRegisters);
  MEMCIM_CHECK_MSG(program.inputs <= program.registers,
                   "program declares " << program.inputs << " inputs over "
                                       << program.registers << " registers");
  MEMCIM_CHECK_MSG(program.output < program.registers,
                   "program output register " << program.output
                                              << " out of range");
  for (const Reg r : program.outputs)
    MEMCIM_CHECK_MSG(r < program.registers,
                     "program output register " << r << " out of range");
  for (std::size_t i = 0; i < program.instructions.size(); ++i) {
    const CimInstruction& inst = program.instructions[i];
    MEMCIM_CHECK_MSG(inst.a < program.registers,
                     "instruction " << i << ": register a=" << inst.a
                                    << " out of range");
    if (inst.op == CimOp::kImply)
      MEMCIM_CHECK_MSG(inst.b < program.registers,
                       "instruction " << i << ": register b=" << inst.b
                                      << " out of range");
  }
}

std::vector<std::uint32_t> encode_program(const CimProgram& program) {
  validate_program(program);
  std::vector<std::uint32_t> words;
  words.reserve(kHeaderWords + program.outputs.size() +
                program.instructions.size());
  words.push_back(kMagic);
  words.push_back(kVersion);
  words.push_back(static_cast<std::uint32_t>(program.registers));
  words.push_back(static_cast<std::uint32_t>(program.inputs));
  words.push_back(static_cast<std::uint32_t>(program.outputs.size()));
  words.push_back(static_cast<std::uint32_t>(program.instructions.size()));
  // Output list: `outputs` when declared, else the single legacy
  // register.  The count word above distinguishes the two shapes
  // (count 0 ⇒ one legacy output register follows).
  if (program.outputs.empty()) {
    words.push_back(static_cast<std::uint32_t>(program.output));
  } else {
    for (const Reg r : program.outputs)
      words.push_back(static_cast<std::uint32_t>(r));
  }
  for (const CimInstruction& inst : program.instructions)
    words.push_back(encode_instruction(inst));
  return words;
}

CimProgram decode_program(const std::vector<std::uint32_t>& words) {
  MEMCIM_CHECK_MSG(words.size() >= kHeaderWords + 1,
                   "program image truncated: " << words.size() << " words");
  MEMCIM_CHECK_MSG(words[0] == kMagic, "bad program magic");
  MEMCIM_CHECK_MSG(words[1] == kVersion,
                   "unsupported program version " << words[1]);
  CimProgram program;
  program.registers = words[2];
  program.inputs = words[3];
  const std::size_t n_outputs = words[4];
  const std::size_t n_instructions = words[5];
  const std::size_t output_words = n_outputs == 0 ? 1 : n_outputs;
  MEMCIM_CHECK_MSG(
      words.size() == kHeaderWords + output_words + n_instructions,
      "program image size mismatch: " << words.size() << " words");
  std::size_t at = kHeaderWords;
  if (n_outputs == 0) {
    program.output = words[at++];
  } else {
    program.outputs.reserve(n_outputs);
    for (std::size_t i = 0; i < n_outputs; ++i)
      program.outputs.push_back(words[at++]);
    program.output = program.outputs.front();
  }
  program.instructions.reserve(n_instructions);
  for (std::size_t i = 0; i < n_instructions; ++i)
    program.instructions.push_back(decode_instruction(words[at++], i));
  validate_program(program);
  return program;
}

std::vector<std::uint8_t> encode_program_bytes(const CimProgram& program) {
  const std::vector<std::uint32_t> words = encode_program(program);
  std::vector<std::uint8_t> bytes;
  bytes.reserve(words.size() * 4);
  for (const std::uint32_t w : words) {
    bytes.push_back(static_cast<std::uint8_t>(w & 0xFFu));
    bytes.push_back(static_cast<std::uint8_t>((w >> 8) & 0xFFu));
    bytes.push_back(static_cast<std::uint8_t>((w >> 16) & 0xFFu));
    bytes.push_back(static_cast<std::uint8_t>((w >> 24) & 0xFFu));
  }
  return bytes;
}

CimProgram decode_program_bytes(const std::vector<std::uint8_t>& bytes) {
  MEMCIM_CHECK_MSG(bytes.size() % 4 == 0,
                   "program byte image is not a whole number of words");
  std::vector<std::uint32_t> words;
  words.reserve(bytes.size() / 4);
  for (std::size_t i = 0; i < bytes.size(); i += 4) {
    words.push_back(static_cast<std::uint32_t>(bytes[i]) |
                    (static_cast<std::uint32_t>(bytes[i + 1]) << 8) |
                    (static_cast<std::uint32_t>(bytes[i + 2]) << 16) |
                    (static_cast<std::uint32_t>(bytes[i + 3]) << 24));
  }
  return decode_program(words);
}

}  // namespace memcim::isa
