#include "isa/assembler.h"

#include <sstream>
#include <vector>

#include "common/error.h"
#include "isa/isa.h"

namespace memcim::isa {

namespace {

/// Split a line into whitespace-separated tokens, dropping comments.
std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::string token;
  for (const char c : line) {
    if (c == ';') break;
    if (c == ' ' || c == '\t' || c == '\r') {
      if (!token.empty()) tokens.push_back(std::move(token));
      token.clear();
    } else {
      token.push_back(c);
    }
  }
  if (!token.empty()) tokens.push_back(std::move(token));
  return tokens;
}

std::size_t parse_number(const std::string& token, std::size_t line_no) {
  MEMCIM_CHECK_MSG(!token.empty(), "line " << line_no << ": empty operand");
  std::size_t value = 0;
  for (const char c : token) {
    MEMCIM_CHECK_MSG(c >= '0' && c <= '9',
                     "line " << line_no << ": bad number '" << token << "'");
    value = value * 10 + static_cast<std::size_t>(c - '0');
    MEMCIM_CHECK_MSG(value <= kMaxRegisters,
                     "line " << line_no << ": number '" << token
                             << "' exceeds the ISA register limit");
  }
  return value;
}

Reg parse_register(const std::string& token, std::size_t line_no) {
  MEMCIM_CHECK_MSG(token.size() >= 2 && token[0] == 'r',
                   "line " << line_no << ": expected register 'rN', got '"
                           << token << "'");
  return parse_number(token.substr(1), line_no);
}

}  // namespace

std::string disassemble(const CimProgram& program) {
  validate_program(program);
  std::ostringstream out;
  out << ".registers " << program.registers << '\n';
  out << ".inputs " << program.inputs << '\n';
  if (program.outputs.empty()) {
    out << ".output r" << program.output << '\n';
  } else {
    out << ".outputs";
    for (const Reg r : program.outputs) out << " r" << r;
    out << '\n';
  }
  for (const CimInstruction& inst : program.instructions) {
    switch (inst.op) {
      case CimOp::kSetFalse:
        out << "SET0 r" << inst.a << '\n';
        break;
      case CimOp::kSetTrue:
        out << "SET1 r" << inst.a << '\n';
        break;
      case CimOp::kImply:
        out << "IMP  r" << inst.a << " r" << inst.b << '\n';
        break;
    }
  }
  return out.str();
}

CimProgram assemble(const std::string& text) {
  CimProgram program;
  bool saw_registers = false;
  bool saw_output = false;
  bool in_body = false;
  std::istringstream stream(text);
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(stream, line)) {
    ++line_no;
    const std::vector<std::string> tokens = tokenize(line);
    if (tokens.empty()) continue;
    const std::string& head = tokens[0];
    if (head[0] == '.') {
      MEMCIM_CHECK_MSG(!in_body, "line " << line_no
                                         << ": directive after instructions");
      if (head == ".registers") {
        MEMCIM_CHECK_MSG(tokens.size() == 2,
                         "line " << line_no << ": .registers takes one count");
        program.registers = parse_number(tokens[1], line_no);
        saw_registers = true;
      } else if (head == ".inputs") {
        MEMCIM_CHECK_MSG(tokens.size() == 2,
                         "line " << line_no << ": .inputs takes one count");
        program.inputs = parse_number(tokens[1], line_no);
      } else if (head == ".output") {
        MEMCIM_CHECK_MSG(tokens.size() == 2,
                         "line " << line_no << ": .output takes one register");
        program.output = parse_register(tokens[1], line_no);
        program.outputs.clear();
        saw_output = true;
      } else if (head == ".outputs") {
        MEMCIM_CHECK_MSG(tokens.size() >= 2,
                         "line " << line_no
                                 << ": .outputs takes >= 1 register");
        program.outputs.clear();
        for (std::size_t i = 1; i < tokens.size(); ++i)
          program.outputs.push_back(parse_register(tokens[i], line_no));
        program.output = program.outputs.front();
        saw_output = true;
      } else {
        MEMCIM_CHECK_MSG(false, "line " << line_no << ": unknown directive '"
                                        << head << "'");
      }
      continue;
    }
    in_body = true;
    CimInstruction inst;
    if (head == "SET0" || head == "SET1") {
      MEMCIM_CHECK_MSG(tokens.size() == 2,
                       "line " << line_no << ": " << head
                               << " takes one register");
      inst.op = head == "SET0" ? CimOp::kSetFalse : CimOp::kSetTrue;
      inst.a = parse_register(tokens[1], line_no);
    } else if (head == "IMP") {
      MEMCIM_CHECK_MSG(tokens.size() == 3,
                       "line " << line_no << ": IMP takes two registers");
      inst.op = CimOp::kImply;
      inst.a = parse_register(tokens[1], line_no);
      inst.b = parse_register(tokens[2], line_no);
    } else {
      MEMCIM_CHECK_MSG(false, "line " << line_no << ": unknown mnemonic '"
                                      << head << "'");
    }
    program.instructions.push_back(inst);
  }
  MEMCIM_CHECK_MSG(saw_registers, "missing .registers directive");
  MEMCIM_CHECK_MSG(saw_output, "missing .output/.outputs directive");
  validate_program(program);
  return program;
}

}  // namespace memcim::isa
