#include "isa/passes.h"

#include <algorithm>
#include <limits>
#include <queue>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/error.h"
#include "isa/isa.h"

namespace memcim::isa {

namespace {

constexpr std::size_t kNoPos = std::numeric_limits<std::size_t>::max();

/// Constant-propagation lattice for one register.
enum class Lattice : std::uint8_t { kZero, kOne, kTop };

/// Fact key for an established implication (p, q): q >= !p holds.
std::uint64_t fact_key(Reg p, Reg q) {
  return (static_cast<std::uint64_t>(p) << 32) | static_cast<std::uint64_t>(q);
}

/// Drop every fact mentioning register r (a SET may lower p or q, which
/// is the only way an established implication can break — IMP writes
/// are monotone and preserve all facts).
void invalidate_facts(std::unordered_set<std::uint64_t>& facts, Reg r) {
  for (auto it = facts.begin(); it != facts.end();) {
    const Reg p = static_cast<Reg>(*it >> 32);
    const Reg q = static_cast<Reg>(*it & 0xFFFF'FFFFu);
    if (p == r || q == r)
      it = facts.erase(it);
    else
      ++it;
  }
}

}  // namespace

CimProgram known_state_pass(const CimProgram& program, PassStats* stats) {
  validate_program(program);
  PassStats local;
  PassStats& s = stats != nullptr ? *stats : local;

  std::vector<Lattice> state(program.registers, Lattice::kZero);
  for (std::size_t i = 0; i < program.inputs; ++i) state[i] = Lattice::kTop;
  std::unordered_set<std::uint64_t> facts;

  CimProgram out = program;
  out.instructions.clear();
  out.instructions.reserve(program.instructions.size());

  for (const CimInstruction& inst : program.instructions) {
    switch (inst.op) {
      case CimOp::kSetFalse: {
        if (state[inst.a] == Lattice::kZero) {
          ++s.known_state_removed;
          continue;
        }
        state[inst.a] = Lattice::kZero;
        invalidate_facts(facts, inst.a);
        out.instructions.push_back(inst);
        break;
      }
      case CimOp::kSetTrue: {
        if (state[inst.a] == Lattice::kOne) {
          ++s.known_state_removed;
          continue;
        }
        state[inst.a] = Lattice::kOne;
        invalidate_facts(facts, inst.a);
        out.instructions.push_back(inst);
        break;
      }
      case CimOp::kImply: {
        const Reg a = inst.a;
        const Reg b = inst.b;
        // q <- !p | q: a known-1 target or known-1 source is a no-op.
        if (state[b] == Lattice::kOne || (a != b && state[a] == Lattice::kOne)) {
          ++s.known_state_removed;
          continue;
        }
        // p IMP p and 0 IMP q both drive q to 1: strength-reduce to a
        // single-step SET1 pulse.
        if (a == b || state[a] == Lattice::kZero) {
          ++s.strength_reduced;
          state[b] = Lattice::kOne;
          invalidate_facts(facts, b);
          out.instructions.push_back({CimOp::kSetTrue, b, 0});
          break;
        }
        // Unknown source: fuse if this implication is already
        // established (monotone growth keeps it established until a SET
        // touches p or q).
        if (facts.count(fact_key(a, b)) != 0) {
          ++s.implications_fused;
          continue;
        }
        state[b] = Lattice::kTop;
        facts.insert(fact_key(a, b));
        out.instructions.push_back(inst);
        break;
      }
    }
  }
  return out;
}

CimProgram dead_pulse_elimination(const CimProgram& program, PassStats* stats) {
  validate_program(program);
  PassStats local;
  PassStats& s = stats != nullptr ? *stats : local;

  std::vector<char> live(program.registers, 0);
  for (const Reg r : result_registers(program)) live[r] = 1;

  std::vector<CimInstruction> kept;
  kept.reserve(program.instructions.size());
  for (std::size_t i = program.instructions.size(); i-- > 0;) {
    const CimInstruction& inst = program.instructions[i];
    if (inst.op == CimOp::kImply) {
      if (live[inst.b] == 0) {
        ++s.dead_removed;
        continue;
      }
      // Read-modify-write: the target's old value is consumed, so b
      // stays live; the source becomes live.
      live[inst.a] = 1;
      kept.push_back(inst);
    } else {
      if (live[inst.a] == 0) {
        ++s.dead_removed;
        continue;
      }
      // A SET fully defines its register: earlier writes are dead
      // unless something in between reads them.
      live[inst.a] = 0;
      kept.push_back(inst);
    }
  }
  std::reverse(kept.begin(), kept.end());

  CimProgram out = program;
  out.instructions = std::move(kept);
  return out;
}

CimProgram compact_registers(const CimProgram& program, PassStats* stats,
                             std::size_t max_rows) {
  validate_program(program);
  MEMCIM_CHECK_MSG(max_rows >= program.inputs,
                   "row budget " << max_rows << " below the "
                                 << program.inputs << " input rows");
  PassStats local;
  PassStats& s = stats != nullptr ? *stats : local;

  const std::size_t length = program.instructions.size();
  // Timeline: inputs load at t = 0, instruction i runs at t = i + 1,
  // results are read at t = length + 1.
  const std::size_t t_end = length + 1;

  struct Access {
    std::size_t first = kNoPos;
    std::size_t last = 0;
    bool defined_first = false;  ///< first touch is a SET (full define)
  };
  std::vector<Access> access(program.registers);
  const auto touch = [&](Reg r, std::size_t t, bool define) {
    Access& a = access[r];
    if (a.first == kNoPos) {
      a.first = t;
      a.defined_first = define;
    }
    a.last = t;
  };
  for (std::size_t i = 0; i < program.inputs; ++i)
    touch(static_cast<Reg>(i), 0, true);
  for (std::size_t i = 0; i < length; ++i) {
    const CimInstruction& inst = program.instructions[i];
    if (inst.op == CimOp::kImply) {
      touch(inst.a, i + 1, false);
      touch(inst.b, i + 1, false);  // old value of b is consumed
    } else {
      touch(inst.a, i + 1, true);
    }
  }
  const std::vector<Reg> results = result_registers(program);
  for (const Reg r : results) touch(r, t_end, false);

  // Linear scan: registers grouped by first-access time; a row frees
  // once its occupant's last access is strictly before the current
  // time (same-instruction operands never share a row).
  std::vector<std::vector<Reg>> starts(t_end + 1);
  for (std::size_t r = 0; r < program.registers; ++r)
    if (access[r].first != kNoPos && r >= program.inputs)
      starts[access[r].first].push_back(static_cast<Reg>(r));

  using Expiry = std::pair<std::size_t, Reg>;  // (last access, row)
  std::priority_queue<Expiry, std::vector<Expiry>, std::greater<>> heap;
  std::vector<Reg> free_rows;
  std::vector<Reg> mapping(program.registers, static_cast<Reg>(kNoPos));
  std::size_t n_rows = program.inputs;
  // Input registers are the replay ABI: they keep rows [0, inputs) and
  // enter the recycling pool after their last use like any other row.
  for (std::size_t i = 0; i < program.inputs; ++i) {
    mapping[i] = static_cast<Reg>(i);
    heap.push({access[i].last, static_cast<Reg>(i)});
  }

  // Rows handed back by an expired occupant hold stale state; a fresh
  // (never-occupied) row holds logic 0.  Pulses beat rows: a register
  // whose first access *reads* that zero stays on a fresh row as long
  // as the budget allows (a recycled row would need a SET0 pulse to
  // restore it), while a fully-defined register recycles greedily.
  std::vector<std::vector<Reg>> clears_at(t_end + 1);
  for (std::size_t t = 0; t <= t_end; ++t) {
    while (!heap.empty() && heap.top().first < t) {
      free_rows.push_back(heap.top().second);
      heap.pop();
    }
    for (const Reg r : starts[t]) {
      const bool zero_reliant = !access[r].defined_first;
      const bool can_grow = n_rows < max_rows;
      Reg row;
      if (zero_reliant && can_grow) {
        row = static_cast<Reg>(n_rows++);
      } else if (!free_rows.empty()) {
        row = free_rows.back();
        free_rows.pop_back();
        if (zero_reliant) {
          clears_at[t].push_back(row);
          ++s.clears_inserted;
        }
      } else {
        MEMCIM_CHECK_MSG(can_grow,
                         "live registers exceed the row budget " << max_rows);
        row = static_cast<Reg>(n_rows++);
      }
      mapping[r] = row;
      heap.push({access[r].last, row});
    }
  }

  CimProgram out;
  out.registers = std::max<std::size_t>(n_rows, 1);
  out.inputs = program.inputs;
  out.instructions.reserve(length + s.clears_inserted);
  for (std::size_t i = 0; i < length; ++i) {
    for (const Reg row : clears_at[i + 1])
      out.instructions.push_back({CimOp::kSetFalse, row, 0});
    CimInstruction inst = program.instructions[i];
    inst.a = mapping[inst.a];
    if (inst.op == CimOp::kImply)
      inst.b = mapping[inst.b];
    else
      inst.b = 0;
    out.instructions.push_back(inst);
  }
  for (const Reg row : clears_at[t_end])
    out.instructions.push_back({CimOp::kSetFalse, row, 0});

  out.output = mapping[program.output];
  out.outputs.reserve(program.outputs.size());
  for (const Reg r : program.outputs) out.outputs.push_back(mapping[r]);
  s.registers_before = program.registers;
  s.registers_after = out.registers;
  validate_program(out);
  return out;
}

std::size_t packing_block_grain(const PackedProgram& compiled) {
  // One u64 op per input load, per instruction and per result read in
  // every 64-lane block; batch blocks until a task carries about 2k
  // word ops so the pool hand-off stays in the noise for short kernels.
  const std::size_t ops_per_block = compiled.inputs + compiled.length() +
                                    std::max<std::size_t>(
                                        compiled.outputs.size(), 1);
  constexpr std::size_t kTargetOpsPerTask = 2048;
  constexpr std::size_t kMaxGrain = 16;
  return std::clamp<std::size_t>(kTargetOpsPerTask / std::max<std::size_t>(
                                     ops_per_block, 1),
                                 1, kMaxGrain);
}

CimProgram optimize_program(const CimProgram& program, PassStats* stats) {
  PassStats local;
  PassStats& s = stats != nullptr ? *stats : local;
  s.pulses_before = program.instructions.size();
  s.registers_before = program.registers;

  CimProgram current = program;
  constexpr std::size_t kMaxRounds = 8;
  for (std::size_t round = 0; round < kMaxRounds; ++round) {
    PassStats delta;
    CimProgram folded = known_state_pass(current, &delta);
    CimProgram swept = dead_pulse_elimination(folded, &delta);
    s.known_state_removed += delta.known_state_removed;
    s.implications_fused += delta.implications_fused;
    s.strength_reduced += delta.strength_reduced;
    s.dead_removed += delta.dead_removed;
    ++s.rounds;
    const bool changed = delta.known_state_removed != 0 ||
                         delta.implications_fused != 0 ||
                         delta.strength_reduced != 0 ||
                         delta.dead_removed != 0;
    current = std::move(swept);
    if (!changed) break;
  }
  current = compact_registers(current, &s);
  s.pulses_after = current.instructions.size();
  s.registers_after = current.registers;
  return current;
}

}  // namespace memcim::isa
