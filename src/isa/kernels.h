// Cached workload kernels: the compile-once/replay-many entry points
// the tile, CAM and adder wiring call into.
//
// Each kernel records its gate-library microcode ONCE per (shape,
// fabric, optimize) key into the global ProgramCache and replays the
// compiled artifact thereafter.  Replay books reconcile exactly with a
// scalar run_program_simd of the same program (the packed-engine
// guarantee); the *source* form additionally reconciles with the
// legacy hand-rolled walks (e.g. CimTile::parallel_compare's per-row
// fabric loop) — see docs/ISA.md for the reconciliation table.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "isa/cache.h"
#include "logic/cam.h"

namespace memcim::isa {

/// N-bit word equality (the k-mer/tile compare primitive): inputs are
/// the key word then the row word (LSB first); output is the match bit.
[[nodiscard]] std::shared_ptr<const CompiledProgram> cached_word_equality(
    std::size_t bits, const CompileOptions& options = {});

/// N-bit ternary masked equality (the CAM primitive): inputs are key,
/// stored value, per-bit care mask (1 = bit participates), then a row
/// valid bit; output = valid AND every cared bit equal.
[[nodiscard]] std::shared_ptr<const CompiledProgram> cached_masked_equality(
    std::size_t bits, const CompileOptions& options = {});

/// N-bit ripple-carry adder: inputs a then b (LSB first); outputs the
/// sum bits LSB first, then the carry-out.
[[nodiscard]] std::shared_ptr<const CompiledProgram> cached_ripple_adder(
    std::size_t bits, const CompileOptions& options = {});

/// Books of one compiled-kernel batch replay.
struct CompiledRunBooks {
  Time latency{0.0};   ///< one program pass (windows concurrent)
  Energy energy{0.0};  ///< summed over all windows
  std::uint64_t writes = 0;
  std::uint64_t pulses_per_window = 0;
};

struct CamBankSearchResult {
  std::vector<std::size_t> matching_rows;
  CompiledRunBooks books;
};

/// A CAM bank that searches with the compiled masked-equality kernel
/// on the packed engine instead of walking device cells — the
/// stateful-logic flavour of CrsCam, producing identical match sets
/// (tests/isa/kernels_test.cpp holds the two equal).
class CompiledCamBank {
 public:
  /// `optimize_replay` selects the pass-pipeline program (fewer
  /// pulses); false replays the recorded source form.
  CompiledCamBank(std::size_t rows, std::size_t word_bits,
                  const CompileOptions& options = {},
                  bool optimize_replay = true);

  [[nodiscard]] std::size_t rows() const { return valid_.size(); }
  [[nodiscard]] std::size_t word_bits() const { return word_bits_; }

  void write_row(std::size_t row, const std::vector<bool>& word);
  void write_row_ternary(std::size_t row, const std::vector<CamBit>& word);
  void erase_row(std::size_t row);

  /// Parallel search: one packed replay across all rows.
  [[nodiscard]] CamBankSearchResult search(const std::vector<bool>& key);

 private:
  std::size_t word_bits_;
  bool optimize_replay_;
  std::shared_ptr<const CompiledProgram> program_;
  std::vector<std::vector<bool>> value_;
  std::vector<std::vector<bool>> care_;
  std::vector<bool> valid_;
};

struct CompiledAddResult {
  std::vector<std::uint64_t> sums;  ///< width+1 bits each (carry folded in)
  CompiledRunBooks books;
};

/// Batch addition on the compiled ripple-adder kernel: every operand
/// pair is one packed window.  The IMP-programmable counterpart of the
/// CRS TC-adder farm (whose device books stay authoritative for the
/// Table 2 numbers).
[[nodiscard]] CompiledAddResult run_compiled_add(
    std::size_t width, const std::vector<std::uint64_t>& op_a,
    const std::vector<std::uint64_t>& op_b,
    const CompileOptions& options = {}, bool optimize_replay = true);

}  // namespace memcim::isa
