// NoC message types: the packet a producer injects and the delivery
// record the simulator returns.
//
// Packets are multi-flit: a workload-visible payload is carried as
// ceil(bits / flit_payload_bits) flits that wormhole through the mesh
// in order (input FIFOs are FIFO and XY routes are deterministic, so
// per-packet flit order is preserved end to end).  Payload *contents*
// are not simulated wire for wire; each packet carries a 64-bit
// fingerprint from which per-flit wire data is derived when a faulty
// link needs to decide whether a stuck wire actually disagrees with
// the bit it carries (see docs/NOC.md).
#pragma once

#include <cstddef>
#include <cstdint>

#include "common/units.h"

namespace memcim {

/// Discrete NoC virtual-clock cycle.
using NocCycle = std::uint64_t;

/// Sentinel for "no dependency" in NocPacket::after.
inline constexpr std::size_t kNoPacket = static_cast<std::size_t>(-1);

struct NocPacket {
  std::size_t src = 0;   ///< source node (router id, row-major)
  std::size_t dst = 0;   ///< destination node
  std::size_t flits = 1; ///< length in flits (>= 1)
  std::uint64_t tag = 0; ///< caller correlation id (echoed back)
  /// Earliest injection cycle; when `after` names an earlier-injected
  /// packet handle, the effective release is that packet's delivery
  /// cycle plus this offset — how compute time between a command's
  /// arrival and its result's departure is modelled without a separate
  /// event engine.
  NocCycle release = 0;
  std::size_t after = kNoPacket;
  /// Payload digest; seeds the per-flit wire data used by link-fault
  /// corruption modelling.
  std::uint64_t fingerprint = 0;
  /// Trace-context propagation (see telemetry::TraceContext): the
  /// request this packet serves and the span that dispatched it.  Both
  /// 0 outside a trace; the mesh emits a "noc.packet" child span per
  /// delivery while a trace session is active.
  std::uint64_t trace_id = 0;
  std::uint64_t parent_span = 0;
};

struct NocDelivery {
  std::uint64_t tag = 0;
  std::size_t src = 0;
  std::size_t dst = 0;
  std::size_t flits = 0;
  NocCycle released = 0;   ///< effective release cycle
  NocCycle injected = 0;   ///< head flit entered the source router
  NocCycle delivered = 0;  ///< tail flit ejected at the destination
  bool done = false;
  /// Link-fault bookkeeping: flits whose wire data a stuck wire
  /// changed, and the subset whose flip count was even (invisible to
  /// the per-flit parity wire — silent corruption).
  std::uint64_t corrupted_flits = 0;
  std::uint64_t undetected_corrupted_flits = 0;
  /// Span id of the "noc.packet" trace span emitted for this delivery
  /// (0 when the packet carried no trace context).  Consumers chain
  /// downstream work under it so compute → transport → compute forms
  /// one causal tree.
  std::uint64_t span_id = 0;

  [[nodiscard]] bool corrupted() const { return corrupted_flits != 0; }
  /// True when every corrupted flit trips the parity check.
  [[nodiscard]] bool parity_detected() const {
    return corrupted_flits != 0 && undetected_corrupted_flits == 0;
  }
  [[nodiscard]] NocCycle latency() const { return delivered - released; }
};

}  // namespace memcim
