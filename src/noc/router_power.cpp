#include "noc/noc_params.h"

namespace memcim {

namespace {

/// Orion's EnergyFactor: 1/2 · Vdd² (J per farad of switched wire).
[[nodiscard]] auto energy_factor(const NocTech& tech) {
  return 0.5 * tech.vdd * tech.vdd;
}

}  // namespace

RouterPowerModel RouterPowerModel::derive(const NocParams& params) {
  constexpr std::size_t kPorts = 5;  // N, E, S, W, Local
  const NocTech& tech = params.tech;
  const auto e_factor = energy_factor(tech);
  const double wires = static_cast<double>(params.link_wires());

  // MatrixCrossbar::init(): input lines span every output column,
  // output lines span every input row, both at one cell pitch per
  // (port, wire) crosspoint.
  const Length len_in =
      static_cast<double>(kPorts) * wires * tech.xbar_cell_pitch;
  const Length len_out = len_in;  // square 5×5 crossbar
  const Energy e_chg_in = tech.wire_cap * len_in * e_factor;
  const Energy e_chg_out = tech.wire_cap * len_out * e_factor;
  // Control line: half an input-line of plain metal (Orion's
  // Cmetal·len_in/2); charges fully on every traversal.
  const Energy e_chg_ctr = tech.wire_cap * (len_in / 2.0) * e_factor;

  RouterPowerModel model;
  // Average flit: half the wires toggle (Orion `is_max_ ? 1 : 0.5`).
  model.xbar_traversal = (e_chg_in + e_chg_out) * wires * 0.5 + e_chg_ctr;
  const Energy e_buffer_bit = tech.buffer_bit_cap * e_factor;
  model.buffer_write = e_buffer_bit * wires;
  model.buffer_read = e_buffer_bit * wires * 0.5;  // read: bitline half-swing
  model.link_traversal =
      tech.wire_cap * params.link_length * e_factor * wires * 0.5;
  return model;
}

}  // namespace memcim
