#include "noc/mesh.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>
#include <string>

#include "common/error.h"
#include "telemetry/telemetry.h"
#include "telemetry/trace_export.h"

namespace memcim {

namespace {

inline constexpr NocCycle kNever = std::numeric_limits<NocCycle>::max();

/// splitmix64 finalizer — per-flit wire data from the packet digest.
[[nodiscard]] std::uint64_t mix(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

[[nodiscard]] std::uint64_t flit_word(std::uint64_t fingerprint,
                                      std::size_t flit_index) {
  return mix(fingerprint ^ (0xF117ull + static_cast<std::uint64_t>(flit_index)));
}

}  // namespace

MeshNoc::MeshNoc(std::size_t width, std::size_t height, const NocParams& params)
    : width_(width),
      height_(height),
      params_(params),
      power_(RouterPowerModel::derive(params)),
      routers_(width * height),
      nics_(width * height),
      link_busy_(width * height * kNocLinkDirs, 0),
      link_faults_(width * height * kNocLinkDirs) {
  MEMCIM_CHECK_MSG(width > 0 && height > 0, "mesh needs at least one router");
  MEMCIM_CHECK_MSG(params.flit_payload_bits >= 1 && params.buffer_flits >= 1,
                   "degenerate NoC parameters");
}

NocDir MeshNoc::route(std::size_t node, std::size_t dst) const {
  // Dimension-ordered XY: resolve the X offset first, then Y.
  const std::size_t x = x_of(node), y = y_of(node);
  const std::size_t dx = x_of(dst), dy = y_of(dst);
  if (dx > x) return NocDir::kEast;
  if (dx < x) return NocDir::kWest;
  if (dy > y) return NocDir::kSouth;
  if (dy < y) return NocDir::kNorth;
  return NocDir::kLocal;
}

std::size_t MeshNoc::neighbor(std::size_t node, NocDir dir) const {
  switch (dir) {
    case NocDir::kNorth:
      return node - width_;
    case NocDir::kSouth:
      return node + width_;
    case NocDir::kEast:
      return node + 1;
    case NocDir::kWest:
      return node - 1;
    case NocDir::kLocal:
      break;
  }
  MEMCIM_CHECK_MSG(false, "local port has no neighbor");
  return node;
}

std::size_t MeshNoc::entry_port(NocDir dir) const {
  // A flit leaving `node` eastward enters its neighbor's *west* port.
  switch (dir) {
    case NocDir::kNorth:
      return static_cast<std::size_t>(NocDir::kSouth);
    case NocDir::kSouth:
      return static_cast<std::size_t>(NocDir::kNorth);
    case NocDir::kEast:
      return static_cast<std::size_t>(NocDir::kWest);
    case NocDir::kWest:
      return static_cast<std::size_t>(NocDir::kEast);
    case NocDir::kLocal:
      break;
  }
  MEMCIM_CHECK_MSG(false, "local port is not a link");
  return 0;
}

std::size_t MeshNoc::inject(const NocPacket& packet) {
  MEMCIM_CHECK_MSG(packet.src < nodes() && packet.dst < nodes(),
                   "packet endpoints outside the mesh");
  MEMCIM_CHECK_MSG(packet.flits >= 1, "packets carry at least one flit");
  MEMCIM_CHECK_MSG(packet.after == kNoPacket || packet.after < packets_.size(),
                   "dependency on a packet not yet injected");
  const std::size_t handle = packets_.size();
  PacketState ps;
  ps.packet = packet;
  packets_.push_back(ps);
  NocDelivery d;
  d.tag = packet.tag;
  d.src = packet.src;
  d.dst = packet.dst;
  d.flits = packet.flits;
  if (packet.trace_id != 0 && telemetry::enabled()) {
    d.span_id = telemetry::new_span_id();
    if (telemetry::tracing() && !trace_base_set_) {
      trace_base_set_ = true;
      trace_wall_base_ns_ = telemetry::now_ns();
      trace_cycle_base_ = now_;
    }
  }
  deliveries_.push_back(d);
  ++undelivered_;
  ++stats_.packets;
  return handle;
}

void MeshNoc::resolve_releases() {
  for (std::size_t h = release_frontier_; h < packets_.size(); ++h) {
    PacketState& ps = packets_[h];
    if (ps.release_resolved) continue;
    if (ps.packet.after == kNoPacket) {
      ps.released = ps.packet.release;
    } else if (deliveries_[ps.packet.after].done) {
      ps.released = deliveries_[ps.packet.after].delivered + ps.packet.release;
    } else {
      continue;
    }
    ps.release_resolved = true;
    deliveries_[h].released = ps.released;
    nics_[ps.packet.src].push_back(h);
  }
  while (release_frontier_ < packets_.size() &&
         packets_[release_frontier_].release_resolved)
    ++release_frontier_;
}

bool MeshNoc::idle() const {
  if (in_flight_flits_ != 0) return false;
  for (const auto& nic : nics_)
    if (!nic.empty()) return false;
  return true;
}

NocCycle MeshNoc::next_release() const {
  NocCycle next = kNever;
  for (const auto& nic : nics_)
    for (const std::size_t h : nic)
      next = std::min(next, packets_[h].released);
  return next;
}

void MeshNoc::apply_link_faults(std::size_t link, std::size_t handle,
                                std::size_t flit_index) {
  const auto& faults = link_faults_[link];
  if (faults.empty()) return;
  const std::uint64_t word =
      flit_word(packets_[handle].packet.fingerprint, flit_index);
  const std::size_t parity_wire = params_.flit_payload_bits;
  std::size_t flips = 0;
  for (const WireFault& f : faults) {
    bool carried;
    if (f.wire == parity_wire)
      carried = (std::popcount(word) % 2) != 0;  // even-parity wire
    else
      carried = ((word >> f.wire) & 1u) != 0;
    if (carried != f.stuck_one) ++flips;
  }
  if (flips == 0) return;
  ++deliveries_[handle].corrupted_flits;
  if (flips % 2 == 0) ++deliveries_[handle].undetected_corrupted_flits;
}

void MeshNoc::eject(const Flit& flit) {
  PacketState& ps = packets_[flit.packet];
  ++ps.flits_ejected;
  if (ps.flits_ejected == ps.packet.flits) {
    ps.done = true;
    NocDelivery& d = deliveries_[flit.packet];
    d.delivered = now_;
    d.done = true;
    last_delivery_ = std::max(last_delivery_, now_);
    --undelivered_;
    if (d.span_id != 0 && trace_base_set_ && telemetry::tracing()) {
      // Map the packet's virtual lifetime onto the wall-clock axis so
      // the span lands inside the dispatching span in the export.
      static const std::string kSpanName = "noc.packet";
      static telemetry::Counter& traced = telemetry::Registry::global().counter(
          "trace.noc_packets");
      const double cycle_ns = params_.cycle.value() * 1e9;
      const NocCycle start_c = std::max(d.released, trace_cycle_base_);
      const auto ts = trace_wall_base_ns_ +
                      static_cast<std::uint64_t>(std::llround(
                          static_cast<double>(start_c - trace_cycle_base_) *
                          cycle_ns));
      const auto dur = static_cast<std::uint64_t>(std::llround(
          static_cast<double>(now_ - start_c) * cycle_ns));
      telemetry::emit_trace_event(&kSpanName, ts, dur, ps.packet.trace_id,
                                  d.span_id, ps.packet.parent_span,
                                  static_cast<std::uint32_t>(d.dst));
      traced.add(1);
    }
  }
}

void MeshNoc::step_cycle() {
  resolve_releases();

  // Phase A — switch allocation on start-of-cycle state.  Downstream
  // FIFO occupancies only change in phase B, so every credit check
  // below reads the same consistent snapshot regardless of router
  // iteration order.
  std::vector<Transfer> grants;
  grants.reserve(nodes());
  for (std::size_t node = 0; node < nodes(); ++node) {
    Router& router = routers_[node];
    for (std::size_t out = 0; out < kNocPorts; ++out) {
      const NocDir dir = static_cast<NocDir>(out);
      // Gather whether any input head requests this output.
      bool any_candidate = false;
      std::size_t chosen = kNocPorts;
      for (std::size_t scan = 0; scan < kNocPorts; ++scan) {
        const std::size_t p = (router.rr[out] + scan) % kNocPorts;
        const auto& fifo = router.in[p].fifo;
        if (fifo.empty()) continue;
        const Flit& head = fifo.front();
        if (route(node, packets_[head.packet].packet.dst) != dir) continue;
        any_candidate = true;
        chosen = p;
        break;
      }
      if (!any_candidate) continue;
      if (dir != NocDir::kLocal) {
        const std::size_t dn = neighbor(node, dir);
        if (routers_[dn].in[entry_port(dir)].fifo.size() >=
            params_.buffer_flits) {
          ++stats_.credit_stalls;  // backpressure: no credit downstream
          continue;
        }
      }
      grants.push_back({node, chosen, dir});
      router.rr[out] = (chosen + 1) % kNocPorts;
    }
  }

  // Phase B — apply the granted transfers.
  for (const Transfer& t : grants) {
    auto& fifo = routers_[t.node].in[t.in_port].fifo;
    const Flit flit = fifo.front();
    fifo.pop_front();
    ++stats_.buffer_reads;
    ++stats_.xbar_traversals;
    if (t.out == NocDir::kLocal) {
      --in_flight_flits_;
      ++stats_.ejections;
      eject(flit);
      continue;
    }
    const std::size_t dn = neighbor(t.node, t.out);
    const std::size_t link =
        t.node * kNocLinkDirs + static_cast<std::size_t>(t.out);
    ++link_busy_[link];
    ++stats_.flit_hops;
    apply_link_faults(link, flit.packet, flit.index);
    routers_[dn].in[entry_port(t.out)].fifo.push_back(flit);
    ++stats_.buffer_writes;
  }

  // Phase C — NICs feed one flit per cycle into their Local input FIFO.
  for (std::size_t node = 0; node < nodes(); ++node) {
    auto& nic = nics_[node];
    if (nic.empty()) continue;
    // Head-of-NIC selection: the packet already streaming keeps the
    // port; otherwise the earliest (release, handle) ready packet wins.
    constexpr std::size_t npos = static_cast<std::size_t>(-1);
    std::size_t head_pos = npos;
    if (packets_[nic.front()].flits_sent > 0) {
      head_pos = 0;
    } else {
      for (std::size_t i = 0; i < nic.size(); ++i) {
        const PacketState& candidate = packets_[nic[i]];
        if (candidate.released > now_) continue;
        if (head_pos == npos ||
            packets_[nic[head_pos]].released > candidate.released ||
            (packets_[nic[head_pos]].released == candidate.released &&
             nic[head_pos] > nic[i]))
          head_pos = i;
      }
      if (head_pos != npos && head_pos != 0) {
        std::swap(nic[0], nic[head_pos]);
        head_pos = 0;
      }
    }
    if (head_pos != 0) continue;  // nothing released yet
    const std::size_t h = nic.front();
    PacketState& ps = packets_[h];
    auto& local_fifo =
        routers_[node].in[static_cast<std::size_t>(NocDir::kLocal)].fifo;
    if (local_fifo.size() >= params_.buffer_flits) continue;  // NIC stalls
    if (ps.flits_sent == 0) deliveries_[h].injected = now_;
    local_fifo.push_back({h, ps.flits_sent});
    ++ps.flits_sent;
    ++in_flight_flits_;
    ++stats_.flits;
    ++stats_.buffer_writes;
    if (ps.flits_sent == ps.packet.flits) nic.pop_front();
  }

  ++stats_.cycles;
  ++now_;
}

void MeshNoc::run_to_completion() {
  resolve_releases();
  const NocCycle start = now_;
  while (undelivered_ > 0) {
    if (idle()) {
      resolve_releases();
      const NocCycle next = next_release();
      MEMCIM_CHECK_MSG(next != kNever,
                       "NoC deadlock: undelivered packets depend on "
                       "deliveries that can never happen");
      now_ = std::max(now_, next);
    }
    step_cycle();
    MEMCIM_CHECK_MSG(now_ - start < 100'000'000ull,
                     "NoC run exceeded the cycle safety cap");
  }
}

Energy MeshNoc::dynamic_energy() const {
  return power_.buffer_write * static_cast<double>(stats_.buffer_writes) +
         power_.buffer_read * static_cast<double>(stats_.buffer_reads) +
         power_.xbar_traversal * static_cast<double>(stats_.xbar_traversals) +
         power_.link_traversal * static_cast<double>(stats_.flit_hops);
}

std::size_t MeshNoc::hops(std::size_t src, std::size_t dst) const {
  const std::size_t x1 = x_of(src), y1 = y_of(src);
  const std::size_t x2 = x_of(dst), y2 = y_of(dst);
  return (x1 > x2 ? x1 - x2 : x2 - x1) + (y1 > y2 ? y1 - y2 : y2 - y1);
}

Energy MeshNoc::packet_energy(std::size_t src, std::size_t dst,
                              std::size_t flits) const {
  // Each flit enters 1 + h routers (source NIC write plus one write per
  // hop), is read and crosses the crossbar once per router, and pays h
  // link traversals — all structural, never affected by stalls.
  const auto h = static_cast<double>(hops(src, dst));
  const auto n = static_cast<double>(flits);
  return (power_.buffer_write + power_.buffer_read + power_.xbar_traversal) *
             ((1.0 + h) * n) +
         power_.link_traversal * (h * n);
}

std::vector<NocLinkUse> MeshNoc::link_utilization() const {
  std::vector<NocLinkUse> uses;
  for (std::size_t node = 0; node < nodes(); ++node) {
    for (std::size_t d = 0; d < kNocLinkDirs; ++d) {
      const NocDir dir = static_cast<NocDir>(d);
      // Skip ids that point off the mesh edge.
      const std::size_t x = x_of(node), y = y_of(node);
      if ((dir == NocDir::kNorth && y == 0) ||
          (dir == NocDir::kSouth && y + 1 == height_) ||
          (dir == NocDir::kWest && x == 0) ||
          (dir == NocDir::kEast && x + 1 == width_))
        continue;
      NocLinkUse use;
      use.node = node;
      use.dir = dir;
      use.busy_cycles = link_busy_[node * kNocLinkDirs + d];
      use.utilization = last_delivery_ == 0
                            ? 0.0
                            : static_cast<double>(use.busy_cycles) /
                                  static_cast<double>(last_delivery_);
      uses.push_back(use);
    }
  }
  return uses;
}

void MeshNoc::set_link_fault(std::size_t link, std::size_t wire,
                             bool stuck_one) {
  MEMCIM_CHECK_MSG(link < link_population(), "link id out of range");
  MEMCIM_CHECK_MSG(wire < params_.link_wires(), "wire index out of range");
  link_faults_[link].push_back({wire, stuck_one});
}

void MeshNoc::record_telemetry() const {
  if (!telemetry::enabled()) return;
  telemetry::Registry& reg = telemetry::Registry::global();
  reg.counter("noc.packets").add(stats_.packets);
  reg.counter("noc.flits").add(stats_.flits);
  reg.counter("noc.hops").add(stats_.flit_hops);
  reg.counter("noc.ejections").add(stats_.ejections);
  reg.counter("noc.buffer_writes").add(stats_.buffer_writes);
  reg.counter("noc.buffer_reads").add(stats_.buffer_reads);
  reg.counter("noc.xbar_traversals").add(stats_.xbar_traversals);
  reg.counter("noc.credit_stalls").add(stats_.credit_stalls);
  reg.counter("noc.cycles").add(stats_.cycles);
  reg.counter("noc.energy_aj")
      .add(static_cast<std::uint64_t>(dynamic_energy().value() * 1e18));

  telemetry::Histogram& link_hist = reg.histogram(
      "noc.link.utilization_pct",
      {5.0, 10.0, 20.0, 30.0, 40.0, 50.0, 60.0, 70.0, 80.0, 90.0, 100.0});
  for (const NocLinkUse& use : link_utilization())
    link_hist.record(use.utilization * 100.0);

  telemetry::Histogram& latency_hist =
      reg.histogram("noc.packet.latency_cycles",
                    telemetry::exponential_bounds(1.0, 2.0, 14));
  for (const NocDelivery& d : deliveries_)
    if (d.done) latency_hist.record(static_cast<double>(d.latency()));
}

}  // namespace memcim
