// Mesh NoC technology parameters and the Orion-style router power
// model.
//
// The paper's architecture is an *array* of CIM tiles (Figure 2); once
// more than one crossbar computes, the inter-tile communication fabric
// has to be costed, not assumed.  This header parameterizes a 2-D mesh
// of 5-port wormhole-ish routers (N/E/S/W/Local) the way Orion costs a
// matrix crossbar router (Graphite/ATAC `contrib/orion/Crossbar`):
// every per-event energy is a switched wire capacitance,
//
//   E_event = 1/2 · C_wire · Vdd²  per toggling wire,
//
// with the crossbar input/output line lengths derived from the port
// count, flit width and crossbar cell pitch exactly as Orion's
// MatrixCrossbar::init() derives them:
//
//   len_in  = num_out · wires · cell_pitch
//   len_out = num_in  · wires · cell_pitch
//
// On an average flit, half the data wires toggle (Orion's `is_max_ ?
// 1 : 0.5` factor); the select (control) line always charges fully.
// The derived per-flit-event energies live in RouterPowerModel so the
// simulator pays one multiply per event and reconciliation tests can
// recompute the totals from event counts exactly.
#pragma once

#include <cstddef>

#include "common/units.h"

namespace memcim {

/// CMOS interconnect constants for the tile-to-tile network.  The NoC
/// is conventional CMOS (it is the controller side of Figure 2, not
/// the memristive array), so these sit next to the 22 nm FinFET column
/// of Table 1.
struct NocTech {
  Voltage vdd{0.9};                        ///< 22 nm-class supply
  /// Matrix-crossbar cell pitch (one crosspoint per wire pair); the
  /// Orion 65 nm CrsbarCellWidth scaled to the 22 nm node.
  Length xbar_cell_pitch{0.2e-6};
  /// Coupled intermediate-metal wire capacitance (Orion CC3metal).
  CapacitancePerLength wire_cap{2.5e-10};  ///< 0.25 fF/µm
  /// Buffer storage cell capacitance per bit (register-file cell gate
  /// plus bitline share).
  Capacitance buffer_bit_cap{1.5e-15};
};

/// One mesh NoC configuration.  Latency unit is the router cycle: one
/// hop costs one cycle of buffer-to-buffer forwarding, one flit per
/// link per cycle.
struct NocParams {
  std::size_t flit_payload_bits = 64;  ///< data wires per link
  /// Physical wires per link: payload plus one even-parity wire (the
  /// detection channel the fault campaigns exercise).
  [[nodiscard]] std::size_t link_wires() const { return flit_payload_bits + 1; }
  std::size_t buffer_flits = 4;        ///< input FIFO depth per port
  Time cycle{1e-9};                    ///< 1 GHz interface clock (Table 1)
  Length link_length{1e-3};            ///< 1 mm tile-to-tile wire
  NocTech tech{};
};

/// Per-event dynamic energies of one router, derived Orion-style from
/// NocParams.  All four quanta are fixed once the parameters are, so
/// total energy is exactly (event count × quantum) per class.
struct RouterPowerModel {
  Energy buffer_write;    ///< one flit written into an input FIFO
  Energy buffer_read;     ///< one flit popped from an input FIFO
  Energy xbar_traversal;  ///< one flit through the 5×5 matrix crossbar
  Energy link_traversal;  ///< one flit over one inter-router link

  [[nodiscard]] static RouterPowerModel derive(const NocParams& params);
};

}  // namespace memcim
