// Cycle-accurate 2-D mesh NoC with XY routing, bounded input buffers
// and credit-based backpressure.
//
// Microarchitecture (one router per tile, 5 ports N/E/S/W/Local):
//
//   * Every input port owns a FIFO of `buffer_flits` flits.  A flit
//     advances at most one hop per cycle: two-phase simulation
//     snapshots all FIFO heads and occupancies first, then applies the
//     selected transfers, so in-cycle router iteration order can never
//     leak into results.
//   * An output port forwards one flit per cycle.  When several input
//     heads request the same output, a per-output round-robin pointer
//     arbitrates (deterministic: state advances only on grants).
//   * Credits: a transfer is granted only when the downstream input
//     FIFO has a free slot at the start of the cycle — links never
//     drop flits; full buffers backpressure upstream (counted in
//     noc.credit_stalls).
//   * Routing is dimension-ordered XY (X first, then Y): deadlock-free
//     on a mesh, deterministic paths, in-order per-packet delivery.
//   * Injection: packets queue in their source NIC in (release,
//     injection-order) order; the NIC feeds the router's Local input
//     FIFO one flit per cycle.  Ejection pops one flit per cycle from
//     the Local output.
//
// The simulation is serial and the event order is a pure function of
// the injected packet set, so every statistic (and the virtual-clock
// makespan) is bitwise identical at any MEMCIM_THREADS setting — the
// multi-tile layer runs tile *compute* on the thread pool and replays
// traffic here afterwards.
//
// Link faults: a directional link can carry stuck-at wires (see
// set_link_fault).  Each traversing flit's wire data is derived from
// the packet fingerprint; a stuck wire that disagrees flips that bit,
// and the per-flit parity wire catches odd flip counts (even counts
// are silent — the failure mode the fault campaign measures).
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "noc/message.h"
#include "noc/noc_params.h"

namespace memcim {

/// Output directions of a router; kLocal is ejection.
enum class NocDir : std::uint8_t { kNorth = 0, kEast, kSouth, kWest, kLocal };
inline constexpr std::size_t kNocPorts = 5;
/// Directional (non-local) links per router.
inline constexpr std::size_t kNocLinkDirs = 4;

/// Per-link traffic summary exported after a run.
struct NocLinkUse {
  std::size_t node = 0;        ///< upstream router
  NocDir dir = NocDir::kNorth; ///< link direction out of `node`
  std::uint64_t busy_cycles = 0;
  double utilization = 0.0;    ///< busy / makespan (0 when makespan 0)
};

/// Aggregate books of one MeshNoc lifetime.
struct NocStats {
  std::uint64_t packets = 0;
  std::uint64_t flits = 0;           ///< flits injected
  std::uint64_t flit_hops = 0;       ///< link traversals (router→router)
  std::uint64_t ejections = 0;       ///< flits delivered at Local ports
  std::uint64_t buffer_writes = 0;
  std::uint64_t buffer_reads = 0;
  std::uint64_t xbar_traversals = 0;
  std::uint64_t credit_stalls = 0;   ///< grant denied: full downstream FIFO
  std::uint64_t cycles = 0;          ///< virtual cycles simulated (busy only)
};

class MeshNoc {
 public:
  MeshNoc(std::size_t width, std::size_t height, const NocParams& params);

  [[nodiscard]] std::size_t width() const { return width_; }
  [[nodiscard]] std::size_t height() const { return height_; }
  [[nodiscard]] std::size_t nodes() const { return width_ * height_; }
  [[nodiscard]] const NocParams& params() const { return params_; }
  [[nodiscard]] const RouterPowerModel& power() const { return power_; }

  [[nodiscard]] std::size_t node_at(std::size_t x, std::size_t y) const {
    return y * width_ + x;
  }
  [[nodiscard]] std::size_t x_of(std::size_t node) const {
    return node % width_;
  }
  [[nodiscard]] std::size_t y_of(std::size_t node) const {
    return node / width_;
  }

  /// Queue a packet; returns its handle (index into deliveries()).
  /// Handles are assigned in injection-call order, and that order is
  /// part of the deterministic contract — callers inject in a fixed
  /// order (the partitioner uses tile order).
  std::size_t inject(const NocPacket& packet);

  /// Run the virtual clock until every injected packet is delivered.
  /// Callable repeatedly; the clock continues monotonically.
  void run_to_completion();

  [[nodiscard]] NocCycle now() const { return now_; }
  /// Cycle the last flit so far was ejected (the fabric makespan).
  [[nodiscard]] NocCycle makespan() const { return last_delivery_; }
  [[nodiscard]] const std::vector<NocDelivery>& deliveries() const {
    return deliveries_;
  }
  [[nodiscard]] const NocStats& stats() const { return stats_; }

  /// Total dynamic energy, reconstructed exactly from the event counts
  /// (count × per-event quantum per class; see RouterPowerModel).
  [[nodiscard]] Energy dynamic_energy() const;

  /// XY hop count (link traversals per flit) between two nodes.
  [[nodiscard]] std::size_t hops(std::size_t src, std::size_t dst) const;

  /// Exact dynamic energy of one (src → dst, flits) packet.  The hop
  /// count is structural under XY routing, and each flit pays exactly
  /// (1 + hops) buffer writes, reads and crossbar traversals plus
  /// `hops` link traversals regardless of stalls — so summing
  /// packet_energy over all deliveries reproduces dynamic_energy()
  /// bit for bit.  The per-packet attribution book relies on this.
  [[nodiscard]] Energy packet_energy(std::size_t src, std::size_t dst,
                                     std::size_t flits) const;

  /// Per-link busy summary over the current makespan.
  [[nodiscard]] std::vector<NocLinkUse> link_utilization() const;

  // -- fault injection --------------------------------------------------------
  /// Directional links are numbered node · 4 + dir, dir ∈ {N,E,S,W};
  /// ids on the mesh edge address no physical link and arming them is
  /// a no-op (the campaign's population is the full rectangle).
  [[nodiscard]] std::size_t link_population() const {
    return nodes() * kNocLinkDirs;
  }
  /// Pin wire `wire` (< link_wires(), the last being the parity wire)
  /// of directional link `link` at `stuck_one`.  Every flit crossing
  /// the link whose data disagrees gets that bit flipped.
  void set_link_fault(std::size_t link, std::size_t wire, bool stuck_one);

  /// Record noc.link.utilization_pct / noc.packet.latency histograms
  /// and fabric-facing counters for the run so far.  Split out of
  /// run_to_completion so multi-phase callers export once.
  void record_telemetry() const;

 private:
  struct Flit {
    std::size_t packet = 0;  ///< handle
    std::size_t index = 0;   ///< position within the packet
  };
  struct InputPort {
    std::deque<Flit> fifo;
  };
  struct Router {
    InputPort in[kNocPorts];
    std::size_t rr[kNocPorts] = {0, 0, 0, 0, 0};  ///< arbiter pointers
  };
  struct PacketState {
    NocPacket packet;
    NocCycle released = 0;
    bool release_resolved = false;
    bool queued = false;          ///< sitting in (or through) the NIC
    std::size_t flits_sent = 0;   ///< flits pushed into the Local FIFO
    std::size_t flits_ejected = 0;
    bool done = false;
  };
  struct Transfer {
    std::size_t node;
    std::size_t in_port;
    NocDir out;
  };

  [[nodiscard]] NocDir route(std::size_t node, std::size_t dst) const;
  [[nodiscard]] std::size_t neighbor(std::size_t node, NocDir dir) const;
  /// Input port of `neighbor(node, dir)` that link (node, dir) feeds.
  [[nodiscard]] std::size_t entry_port(NocDir dir) const;
  void resolve_releases();
  void step_cycle();
  [[nodiscard]] bool idle() const;
  /// Earliest release among resolved, unqueued packets (or ~0ull).
  [[nodiscard]] NocCycle next_release() const;
  void apply_link_faults(std::size_t link, std::size_t handle,
                         std::size_t flit_index);
  void eject(const Flit& flit);

  std::size_t width_;
  std::size_t height_;
  NocParams params_;
  RouterPowerModel power_;

  std::vector<Router> routers_;
  std::vector<PacketState> packets_;
  std::vector<NocDelivery> deliveries_;
  /// First handle whose release may still be unresolved.  Handles are
  /// resolved in (eventually) ascending prefix order once their
  /// dependencies deliver, so resolve_releases() never needs to rescan
  /// the prefix — keeping it O(active window) even when one MeshNoc
  /// hosts millions of packets across many injection/run sessions.
  std::size_t release_frontier_ = 0;
  /// Per-node NIC: handles of queued packets, kept in (release, handle)
  /// order; the front packet streams its flits first.
  std::vector<std::deque<std::size_t>> nics_;
  std::vector<std::uint64_t> link_busy_;  ///< per directional link
  struct WireFault {
    std::size_t wire;
    bool stuck_one;
  };
  std::vector<std::vector<WireFault>> link_faults_;  ///< per link, may be empty

  /// Virtual-to-wall time mapping for trace emission: captured at the
  /// first traced injection so "noc.packet" spans land inside the
  /// dispatching wall-clock span in the exported timeline.
  bool trace_base_set_ = false;
  std::uint64_t trace_wall_base_ns_ = 0;
  NocCycle trace_cycle_base_ = 0;

  NocCycle now_ = 0;
  NocCycle last_delivery_ = 0;
  std::size_t undelivered_ = 0;
  std::size_t in_flight_flits_ = 0;  ///< flits resident in router FIFOs
  NocStats stats_;
};

}  // namespace memcim
