#include "workloads/parallel_add.h"

#include <algorithm>

#include "common/error.h"
#include "common/parallel.h"
#include "logic/tc_adder.h"
#include "telemetry/telemetry.h"

namespace memcim {

ParallelAddResult run_parallel_add(const ParallelAddParams& params,
                                   const CrsCellParams& cell, Rng& rng) {
  MEMCIM_CHECK(params.operations > 0 && params.adders > 0);
  MEMCIM_CHECK(params.width >= 1 && params.width <= 63);
  static telemetry::SpanSite span_site("workload.parallel_add");
  telemetry::Span span(span_site);

  // One physical adder per farm slot, reused across batches.
  std::vector<CrsTcAdder> farm;
  farm.reserve(params.adders);
  for (std::size_t i = 0; i < params.adders; ++i)
    farm.emplace_back(params.width, cell);
  if (params.farm_hook) params.farm_hook(farm);

  const std::uint64_t max_operand =
      (std::uint64_t{1} << params.width) - 1;

  // Draw every operand up front, in operation order, so the RNG stream
  // (and therefore the result) is independent of how the batch fan-out
  // below is scheduled.
  std::vector<std::uint64_t> op_a(params.operations), op_b(params.operations);
  for (std::size_t op = 0; op < params.operations; ++op) {
    op_a[op] = static_cast<std::uint64_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(max_operand)));
    op_b[op] = static_cast<std::uint64_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(max_operand)));
  }

  ParallelAddResult result;
  result.sums.assign(params.operations, 0);
  std::vector<TcAdderResult> batch_results(params.adders);
  const std::size_t batches =
      (params.operations + params.adders - 1) / params.adders;
  Time batch_latency{0.0};
  for (std::size_t batch = 0; batch < batches; ++batch) {
    const std::size_t begin = batch * params.adders;
    const std::size_t end =
        std::min(begin + params.adders, params.operations);
    // Tile-level fan-out: each farm slot is an independent physical
    // adder, so the ops of one batch run concurrently — exactly the
    // in-array parallelism the paper's Table 1 budget assumes.
    parallel_for(begin, end, 8, [&](std::size_t op) {
      batch_results[op - begin] = farm[op - begin].add(op_a[op], op_b[op]);
    });
    // Reduce in operation order: totals are identical at any thread
    // count.
    Time worst_in_batch{0.0};
    for (std::size_t op = begin; op < end; ++op) {
      const TcAdderResult& r = batch_results[op - begin];
      result.sums[op] = r.sum;
      result.total_pulses += r.pulses;
      result.total_energy += r.energy;
      worst_in_batch = std::max(worst_in_batch, r.latency);
      if (r.sum != ((op_a[op] + op_b[op]) & max_operand)) ++result.mismatches;
    }
    batch_latency += worst_in_batch;
  }
  result.latency = batch_latency;
  if (telemetry::enabled()) {
    // Recorded once, from the serial reduction totals, so the tallies
    // are bitwise identical at any MEMCIM_THREADS.
    using telemetry::Registry;
    static telemetry::Counter& ops =
        Registry::global().counter("workload.parallel_add.ops");
    static telemetry::Counter& batches_c =
        Registry::global().counter("workload.parallel_add.batches");
    static telemetry::Counter& pulses =
        Registry::global().counter("workload.parallel_add.pulses");
    static telemetry::Counter& mismatches =
        Registry::global().counter("workload.parallel_add.mismatches");
    ops.add(params.operations);
    batches_c.add(batches);
    pulses.add(result.total_pulses);
    mismatches.add(result.mismatches);
  }
  return result;
}

}  // namespace memcim
