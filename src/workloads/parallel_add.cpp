#include "workloads/parallel_add.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/parallel.h"
#include "logic/packed_adder.h"
#include "logic/tc_adder.h"
#include "telemetry/telemetry.h"

namespace memcim {

namespace {

/// Record the workload tallies once, from the serial reduction totals,
/// so they are bitwise identical at any MEMCIM_THREADS.
void record_workload(const ParallelAddParams& params,
                     const ParallelAddResult& result, std::size_t batches) {
  if (!telemetry::enabled()) return;
  using telemetry::Registry;
  static telemetry::Counter& ops =
      Registry::global().counter("workload.parallel_add.ops");
  static telemetry::Counter& batches_c =
      Registry::global().counter("workload.parallel_add.batches");
  static telemetry::Counter& pulses =
      Registry::global().counter("workload.parallel_add.pulses");
  static telemetry::Counter& mismatches =
      Registry::global().counter("workload.parallel_add.mismatches");
  ops.add(params.operations);
  batches_c.add(batches);
  pulses.add(result.total_pulses);
  mismatches.add(result.mismatches);
}

void run_scalar_farm(const ParallelAddParams& params,
                     const CrsCellParams& cell,
                     const std::vector<std::uint64_t>& op_a,
                     const std::vector<std::uint64_t>& op_b,
                     std::uint64_t max_operand, std::size_t batches,
                     ParallelAddResult& result) {
  // One physical adder per farm slot, reused across batches.
  std::vector<CrsTcAdder> farm;
  farm.reserve(params.adders);
  for (std::size_t i = 0; i < params.adders; ++i)
    farm.emplace_back(params.width, cell);
  if (params.farm_hook) params.farm_hook(farm);

  std::vector<TcAdderResult> batch_results(params.adders);
  Time batch_latency{0.0};
  for (std::size_t batch = 0; batch < batches; ++batch) {
    const std::size_t begin = batch * params.adders;
    const std::size_t end =
        std::min(begin + params.adders, params.operations);
    // Tile-level fan-out: each farm slot is an independent physical
    // adder, so the ops of one batch run concurrently — exactly the
    // in-array parallelism the paper's Table 1 budget assumes.
    parallel_for(begin, end, params.chunk_grain, [&](std::size_t op) {
      batch_results[op - begin] = farm[op - begin].add(op_a[op], op_b[op]);
    });
    // Reduce in operation order: totals are identical at any thread
    // count.
    Time worst_in_batch{0.0};
    for (std::size_t op = begin; op < end; ++op) {
      const TcAdderResult& r = batch_results[op - begin];
      result.sums[op] = r.sum;
      result.total_pulses += r.pulses;
      result.total_energy += r.energy;
      if (params.record_per_op) result.op_energy[op] = r.energy.value();
      worst_in_batch = std::max(worst_in_batch, r.latency);
      if (r.sum != ((op_a[op] + op_b[op]) & max_operand)) ++result.mismatches;
    }
    batch_latency += worst_in_batch;
  }
  result.latency = batch_latency;
  for (const CrsTcAdder& adder : farm) result.transitions += adder.transitions();
}

void run_packed_farm(const ParallelAddParams& params,
                     const CrsCellParams& cell,
                     const std::vector<std::uint64_t>& op_a,
                     const std::vector<std::uint64_t>& op_b,
                     std::uint64_t max_operand, std::size_t batches,
                     ParallelAddResult& result) {
  PackedTcAdderFarm farm(params.adders, params.width, cell);
  const PackedAddOutcome outcome = farm.run(op_a, op_b, params.chunk_grain);

  // The pulse schedule is constant-time, so every op reports the same
  // pulse count and latency as its scalar twin.
  const std::uint64_t pulses_per_op =
      static_cast<std::uint64_t>(CrsTcAdder::steps(params.width));
  const Time per_add_latency =
      cell.t_pulse * static_cast<double>(pulses_per_op);

  // Identical serial reduction to the scalar farm — per-op energies are
  // already the exact doubles CrsTcAdder::add would have reported, so
  // the op-order accumulation reproduces every total bit for bit.
  Time batch_latency{0.0};
  for (std::size_t batch = 0; batch < batches; ++batch) {
    const std::size_t begin = batch * params.adders;
    const std::size_t end =
        std::min(begin + params.adders, params.operations);
    Time worst_in_batch{0.0};
    for (std::size_t op = begin; op < end; ++op) {
      result.sums[op] = outcome.sums[op];
      result.total_pulses += pulses_per_op;
      result.total_energy += Energy(outcome.energies[op]);
      if (params.record_per_op) result.op_energy[op] = outcome.energies[op];
      worst_in_batch = std::max(worst_in_batch, per_add_latency);
      if (outcome.sums[op] != ((op_a[op] + op_b[op]) & max_operand))
        ++result.mismatches;
    }
    batch_latency += worst_in_batch;
  }
  result.latency = batch_latency;
  result.transitions = outcome.transitions;
  result.used_packed_engine = true;

  if (telemetry::enabled()) {
    // The scalar farm's device cells would have booked these exact
    // tallies pulse by pulse; the packed engine books them once from
    // the reduction totals (crs_cell.switch_energy_aj accrues one
    // fixed attojoule quantum per transition).
    using telemetry::Registry;
    static telemetry::Counter& cell_pulses =
        Registry::global().counter("crs_cell.pulses");
    static telemetry::Counter& cell_transitions =
        Registry::global().counter("crs_cell.transitions");
    static telemetry::Counter& cell_energy_aj =
        Registry::global().counter("crs_cell.switch_energy_aj");
    cell_pulses.add(static_cast<std::uint64_t>(params.operations) *
                    pulses_per_op);
    cell_transitions.add(outcome.transitions);
    cell_energy_aj.add(outcome.transitions *
                       static_cast<std::uint64_t>(std::llround(
                           cell.e_per_switch.value() * 1e18)));
  }
}

}  // namespace

ParallelAddResult run_parallel_add(const ParallelAddParams& params,
                                   const CrsCellParams& cell, Rng& rng) {
  MEMCIM_CHECK(params.width >= 1 && params.width <= 63);
  const std::uint64_t max_operand =
      (std::uint64_t{1} << params.width) - 1;

  // Draw every operand up front, in operation order, so the RNG stream
  // (and therefore the result) is independent of how the batch fan-out
  // below is scheduled.
  std::vector<std::uint64_t> op_a(params.operations), op_b(params.operations);
  for (std::size_t op = 0; op < params.operations; ++op) {
    op_a[op] = static_cast<std::uint64_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(max_operand)));
    op_b[op] = static_cast<std::uint64_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(max_operand)));
  }
  return run_parallel_add_ops(params, cell, op_a, op_b);
}

ParallelAddResult run_parallel_add_ops(const ParallelAddParams& params,
                                       const CrsCellParams& cell,
                                       const std::vector<std::uint64_t>& op_a,
                                       const std::vector<std::uint64_t>& op_b) {
  MEMCIM_CHECK(params.operations > 0 && params.adders > 0);
  MEMCIM_CHECK(params.width >= 1 && params.width <= 63);
  MEMCIM_CHECK(params.chunk_grain >= 1);
  MEMCIM_CHECK_MSG(op_a.size() == params.operations &&
                       op_b.size() == params.operations,
                   "operand batch sizes must equal params.operations");
  static telemetry::SpanSite span_site("workload.parallel_add");
  telemetry::Span span(span_site);

  const std::uint64_t max_operand =
      (std::uint64_t{1} << params.width) - 1;

  // Engine choice: armed fault hooks pin per-cell device state
  // mid-schedule, which only the real device walk models — they force
  // the scalar farm regardless of the requested engine.
  bool packed = params.engine != AdderEngine::kScalar;
  if (packed && params.farm_hook) {
    packed = false;
    if (telemetry::enabled())
      telemetry::Registry::global()
          .counter("logic.packed.adder_fallbacks")
          .add(1);
  }

  ParallelAddResult result;
  result.sums.assign(params.operations, 0);
  if (params.record_per_op) result.op_energy.assign(params.operations, 0.0);
  const std::size_t batches =
      (params.operations + params.adders - 1) / params.adders;
  if (packed)
    run_packed_farm(params, cell, op_a, op_b, max_operand, batches, result);
  else
    run_scalar_farm(params, cell, op_a, op_b, max_operand, batches, result);

  record_workload(params, result, batches);
  return result;
}

}  // namespace memcim
