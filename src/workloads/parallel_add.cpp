#include "workloads/parallel_add.h"

#include <algorithm>

#include "common/error.h"
#include "logic/tc_adder.h"

namespace memcim {

ParallelAddResult run_parallel_add(const ParallelAddParams& params,
                                   const CrsCellParams& cell, Rng& rng) {
  MEMCIM_CHECK(params.operations > 0 && params.adders > 0);
  MEMCIM_CHECK(params.width >= 1 && params.width <= 63);

  // One physical adder per farm slot, reused across batches.
  std::vector<CrsTcAdder> farm;
  farm.reserve(params.adders);
  for (std::size_t i = 0; i < params.adders; ++i)
    farm.emplace_back(params.width, cell);

  const std::uint64_t max_operand =
      (std::uint64_t{1} << params.width) - 1;

  ParallelAddResult result;
  result.sums.reserve(params.operations);
  const std::size_t batches =
      (params.operations + params.adders - 1) / params.adders;
  Time batch_latency{0.0};
  for (std::size_t batch = 0; batch < batches; ++batch) {
    Time worst_in_batch{0.0};
    const std::size_t begin = batch * params.adders;
    const std::size_t end =
        std::min(begin + params.adders, params.operations);
    for (std::size_t op = begin; op < end; ++op) {
      const auto a = static_cast<std::uint64_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(max_operand)));
      const auto b = static_cast<std::uint64_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(max_operand)));
      CrsTcAdder& adder = farm[op - begin];
      const TcAdderResult r = adder.add(a, b);
      result.sums.push_back(r.sum);
      result.total_pulses += r.pulses;
      result.total_energy += r.energy;
      worst_in_batch = std::max(worst_in_batch, r.latency);
      if (r.sum != ((a + b) & max_operand)) ++result.mismatches;
    }
    batch_latency += worst_in_batch;
  }
  result.latency = batch_latency;
  return result;
}

}  // namespace memcim
