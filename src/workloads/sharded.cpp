#include "workloads/sharded.h"

#include <algorithm>

#include "common/error.h"
#include "common/parallel.h"
#include "telemetry/attribution.h"
#include "telemetry/telemetry.h"
#include "workloads/dna.h"

namespace memcim {

namespace {

/// splitmix64 finalizer — packet payload fingerprints.
std::uint64_t mix_fingerprint(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

/// Flits needed to carry `bits` of payload (at least one).
std::size_t flits_for_bits(std::size_t bits, const NocParams& params) {
  return std::max<std::size_t>(
      1, (bits + params.flit_payload_bits - 1) / params.flit_payload_bits);
}

/// Command/completion descriptors: opcode + range/tag + checksum.
constexpr std::size_t kDescriptorBits = 128;

/// The trace context a sharded run executes under: the caller's when
/// one is already active, otherwise a fresh root (one trace per run).
telemetry::TraceContext run_root_context() {
  const telemetry::TraceContext current = telemetry::current_trace_context();
  return current.valid() ? current : telemetry::new_root_context();
}

/// The shard-compute span site shared by all three workloads: one span
/// per (tile, shard) task, parented under the workload span and tagged
/// with the tile via TileScope.
telemetry::SpanSite& shard_compute_site() {
  static telemetry::SpanSite site("workload.shard_compute");
  return site;
}

/// Charge one shard's command/response packet pair to the NoC
/// attribution row of (tile, shard): exact flit counts plus the
/// structural per-packet energy (see MeshNoc::packet_energy).
void attribute_packet_pair(const TileFabric& fabric, std::size_t tile,
                           const NocPacket& cmd, const NocPacket& resp) {
  if (!telemetry::enabled()) return;
  const auto t = static_cast<std::uint32_t>(tile);
  telemetry::attribute_flits(t, t, cmd.flits + resp.flits);
  const Energy e = fabric.noc().packet_energy(cmd.src, cmd.dst, cmd.flits) +
                   fabric.noc().packet_energy(resp.src, resp.dst, resp.flits);
  telemetry::attribute_energy(telemetry::AttrLayer::kNoc, t, t, e.value());
}

struct NocSnapshot {
  NocStats stats;
  Energy energy{0.0};
  NocCycle now = 0;
};

NocSnapshot noc_snapshot(const MeshNoc& noc) {
  return {noc.stats(), noc.dynamic_energy(), noc.now()};
}

void finish_run(TileFabric& fabric, const NocSnapshot& before,
                ShardedRunStats& run) {
  fabric.noc().run_to_completion();
  const MeshNoc& noc = fabric.noc();
  run.makespan = noc.makespan() > before.now ? noc.makespan() - before.now : 0;
  run.latency =
      Time(fabric.config().noc.cycle.value() * static_cast<double>(run.makespan));
  run.noc_energy = noc.dynamic_energy() - before.energy;
  run.flits = noc.stats().flits - before.stats.flits;
  run.flit_hops = noc.stats().flit_hops - before.stats.flit_hops;
  run.fabric_utilization = fabric.utilization();
}

/// Merge per-shard farm results in tile order, re-folding every total
/// in global op order — the fold a serial execution of the same plan
/// would produce, bit for bit.
ParallelAddResult merge_add_shards(
    const ShardPlan& plan, const std::vector<ParallelAddResult>& per_shard) {
  ParallelAddResult merged;
  merged.sums.assign(plan.items, 0);
  merged.op_energy.assign(plan.items, 0.0);
  merged.used_packed_engine = true;
  for (const Shard& s : plan.shards) {
    if (s.empty()) continue;
    const ParallelAddResult& r = per_shard[s.tile];
    MEMCIM_CHECK(r.sums.size() == s.size() && r.op_energy.size() == s.size());
    for (std::size_t i = 0; i < s.size(); ++i) {
      merged.sums[s.begin + i] = r.sums[i];
      merged.op_energy[s.begin + i] = r.op_energy[i];
    }
    merged.total_pulses += r.total_pulses;
    merged.mismatches += r.mismatches;
    merged.transitions += r.transitions;
    merged.latency += r.latency;
    merged.used_packed_engine =
        merged.used_packed_engine && r.used_packed_engine;
  }
  for (std::size_t op = 0; op < plan.items; ++op)
    merged.total_energy += Energy(merged.op_energy[op]);
  return merged;
}

/// Execute one shard on a fresh full-size farm.
ParallelAddResult run_add_shard(const Shard& s,
                               const ParallelAddParams& params,
                               const CrsCellParams& cell,
                               const std::vector<std::uint64_t>& op_a,
                               const std::vector<std::uint64_t>& op_b) {
  ParallelAddParams tile_params = params;
  tile_params.operations = s.size();
  tile_params.record_per_op = true;
  const std::vector<std::uint64_t> a(op_a.begin() + static_cast<std::ptrdiff_t>(s.begin),
                                     op_a.begin() + static_cast<std::ptrdiff_t>(s.end));
  const std::vector<std::uint64_t> b(op_b.begin() + static_cast<std::ptrdiff_t>(s.begin),
                                     op_b.begin() + static_cast<std::ptrdiff_t>(s.end));
  return run_parallel_add_ops(tile_params, cell, a, b);
}

}  // namespace

ShardedAddResult sharded_parallel_add(TileFabric& fabric,
                                      const ParallelAddParams& params,
                                      const CrsCellParams& cell, Rng& rng) {
  MEMCIM_CHECK(params.operations > 0 && params.adders > 0);
  MEMCIM_CHECK(params.width >= 1 && params.width <= 63);
  static telemetry::SpanSite span_site("workload.sharded_add");
  const telemetry::TraceContextScope root_scope(run_root_context());
  telemetry::Span span(span_site);
  const telemetry::TraceContext ctx = telemetry::current_trace_context();

  // Identical draw order to run_parallel_add: the sharded run consumes
  // the same RNG stream as its single-farm counterpart.
  const std::uint64_t max_operand = (std::uint64_t{1} << params.width) - 1;
  std::vector<std::uint64_t> op_a(params.operations), op_b(params.operations);
  for (std::size_t op = 0; op < params.operations; ++op) {
    op_a[op] = static_cast<std::uint64_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(max_operand)));
    op_b[op] = static_cast<std::uint64_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(max_operand)));
  }

  const ShardPlan plan = Partitioner::batch_aligned(
      params.operations, fabric.tiles(), params.adders);

  // Compute phase: one task per shard, chunks write disjoint slots.
  std::vector<ParallelAddResult> per_shard(fabric.tiles());
  std::vector<telemetry::TraceContext> shard_ctx(fabric.tiles());
  parallel_for(0, fabric.tiles(), 1, [&](std::size_t t) {
    const Shard& s = plan.shards[t];
    if (s.empty()) return;
    const telemetry::TileScope tile_scope(static_cast<std::uint32_t>(t));
    telemetry::Span compute_span(shard_compute_site());
    shard_ctx[t] = telemetry::current_trace_context();
    per_shard[t] = run_add_shard(s, params, cell, op_a, op_b);
  });

  ShardedAddResult out;
  out.plan = plan;
  out.merged = merge_add_shards(plan, per_shard);
  out.shard_transitions.assign(fabric.tiles(), 0);
  for (std::size_t t = 0; t < fabric.tiles(); ++t)
    out.shard_transitions[t] = per_shard[t].transitions;

  // Traffic replay: command out, completion back after the shard's
  // compute time.  Results stay resident in the tiles (the CIM point),
  // so both descriptors are small.
  const NocSnapshot before = noc_snapshot(fabric.noc());
  const std::size_t desc_flits =
      flits_for_bits(kDescriptorBits, fabric.config().noc);
  for (std::size_t t = 0; t < fabric.tiles(); ++t) {
    const Shard& s = plan.shards[t];
    if (s.empty()) continue;
    NocPacket cmd;
    cmd.src = fabric.host();
    cmd.dst = t;
    cmd.flits = desc_flits;
    cmd.tag = 2 * t;
    cmd.release = before.now;
    cmd.fingerprint = mix_fingerprint(0xADD0ull ^ (t << 8) ^ s.begin);
    cmd.trace_id = ctx.trace_id;
    cmd.parent_span = ctx.span_id;
    const std::size_t cmd_handle = fabric.noc().inject(cmd);

    const NocCycle compute = fabric.compute_cycles(per_shard[t].latency);
    fabric.note_busy(t, compute, static_cast<std::uint32_t>(t));

    NocPacket resp;
    resp.src = t;
    resp.dst = fabric.host();
    resp.flits = desc_flits;
    resp.tag = 2 * t + 1;
    resp.after = cmd_handle;
    resp.release = compute;
    resp.fingerprint = mix_fingerprint(0xD0BEull ^ (t << 8) ^ s.end);
    resp.trace_id = shard_ctx[t].trace_id;
    resp.parent_span = shard_ctx[t].span_id;
    (void)fabric.noc().inject(resp);

    attribute_packet_pair(fabric, t, cmd, resp);
    if (telemetry::enabled()) {
      const auto tid = static_cast<std::uint32_t>(t);
      telemetry::attribute_energy(telemetry::AttrLayer::kLogic, tid, tid,
                                  per_shard[t].total_energy.value());
      telemetry::attribute_pulses(telemetry::AttrLayer::kDevice, tid, tid,
                                  per_shard[t].total_pulses);
    }
  }
  finish_run(fabric, before, out.run);
  out.run.compute_energy = out.merged.total_energy;
  out.run.trace_id = ctx.trace_id;
  return out;
}

ShardedAddResult replay_parallel_add_plan(const ShardPlan& plan,
                                          const ParallelAddParams& params,
                                          const CrsCellParams& cell,
                                          const std::vector<std::uint64_t>& op_a,
                                          const std::vector<std::uint64_t>& op_b) {
  MEMCIM_CHECK(op_a.size() == plan.items && op_b.size() == plan.items);
  std::vector<ParallelAddResult> per_shard(plan.shards.size());
  for (const Shard& s : plan.shards) {
    if (s.empty()) continue;
    per_shard[s.tile] = run_add_shard(s, params, cell, op_a, op_b);
  }
  ShardedAddResult out;
  out.plan = plan;
  out.merged = merge_add_shards(plan, per_shard);
  out.shard_transitions.assign(plan.shards.size(), 0);
  for (std::size_t t = 0; t < per_shard.size(); ++t)
    out.shard_transitions[t] = per_shard[t].transitions;
  out.run.compute_energy = out.merged.total_energy;
  return out;
}

std::vector<bool> encode_kmer(const std::string& text, std::size_t pos,
                              std::size_t k) {
  MEMCIM_CHECK_MSG(pos + k <= text.size(), "k-mer window past end of text");
  std::vector<bool> bits(2 * k);
  for (std::size_t i = 0; i < k; ++i) {
    const auto code =
        static_cast<std::uint8_t>(nucleotide_from_char(text[pos + i]));
    bits[2 * i] = (code & 1u) != 0;
    bits[2 * i + 1] = (code >> 1) != 0;
  }
  return bits;
}

ShardedSearchResult sharded_kmer_search(
    TileFabric& fabric, const std::vector<std::vector<bool>>& database,
    const std::vector<std::vector<bool>>& queries) {
  const std::size_t tiles = fabric.tiles();
  const std::size_t rows = fabric.config().tile.rows;
  const std::size_t row_bits = fabric.config().tile.row_bits;
  MEMCIM_CHECK_MSG(database.size() == tiles * rows,
                   "database must exactly fill the fabric");
  static telemetry::SpanSite span_site("workload.sharded_search");
  const telemetry::TraceContextScope root_scope(run_root_context());
  telemetry::Span span(span_site);
  const telemetry::TraceContext ctx = telemetry::current_trace_context();

  // Distribute the database row-major (setup, not part of the run).
  for (std::size_t r = 0; r < database.size(); ++r) {
    MEMCIM_CHECK(database[r].size() == row_bits);
    fabric.tile(r / rows).store_row(r % rows, database[r]);
  }

  // Compute phase: each tile matches every query, in query order.
  std::vector<std::vector<std::vector<bool>>> tile_matches(tiles);
  std::vector<std::vector<Time>> tile_latency(tiles);
  std::vector<Energy> tile_delta(tiles, Energy{0.0});
  std::vector<telemetry::TraceContext> shard_ctx(tiles);
  parallel_for(0, tiles, 1, [&](std::size_t t) {
    const telemetry::TileScope tile_scope(static_cast<std::uint32_t>(t));
    telemetry::Span compute_span(shard_compute_site());
    shard_ctx[t] = telemetry::current_trace_context();
    CimTile& tile = fabric.tile(t);
    const Energy e0 = tile.stats().energy;
    tile_matches[t].reserve(queries.size());
    tile_latency[t].reserve(queries.size());
    for (const std::vector<bool>& q : queries) {
      const Time l0 = tile.stats().latency;
      tile_matches[t].push_back(tile.parallel_compare(q));
      tile_latency[t].push_back(tile.stats().latency - l0);
    }
    tile_delta[t] = tile.stats().energy - e0;
  });

  ShardedSearchResult out;
  out.matches.resize(queries.size());
  for (std::size_t q = 0; q < queries.size(); ++q)
    for (std::size_t t = 0; t < tiles; ++t)
      for (std::size_t r = 0; r < rows; ++r)
        if (tile_matches[t][q][r]) out.matches[q].push_back(t * rows + r);

  // Traffic: host-coordinated waves per tile — the query-(q+1) command
  // releases only once the query-q completion reached the host.
  const NocSnapshot before = noc_snapshot(fabric.noc());
  const NocParams& noc_params = fabric.config().noc;
  const std::size_t key_flits = flits_for_bits(64 + row_bits, noc_params);
  const std::size_t resp_flits = flits_for_bits(64 + rows, noc_params);
  for (std::size_t t = 0; t < tiles; ++t) {
    std::size_t prev = kNoPacket;
    for (std::size_t q = 0; q < queries.size(); ++q) {
      NocPacket cmd;
      cmd.src = fabric.host();
      cmd.dst = t;
      cmd.flits = key_flits;
      cmd.tag = 2 * (t * queries.size() + q);
      cmd.after = prev;
      cmd.release = prev == kNoPacket ? before.now : 0;
      cmd.fingerprint = mix_fingerprint(0x5EA4ull ^ (t << 16) ^ q);
      cmd.trace_id = ctx.trace_id;
      cmd.parent_span = ctx.span_id;
      const std::size_t cmd_handle = fabric.noc().inject(cmd);

      const NocCycle compute = fabric.compute_cycles(tile_latency[t][q]);
      fabric.note_busy(t, compute, static_cast<std::uint32_t>(t));

      NocPacket resp;
      resp.src = t;
      resp.dst = fabric.host();
      resp.flits = resp_flits;
      resp.tag = cmd.tag + 1;
      resp.after = cmd_handle;
      resp.release = compute;
      resp.fingerprint = mix_fingerprint(0x4E5Full ^ (t << 16) ^ q);
      resp.trace_id = shard_ctx[t].trace_id;
      resp.parent_span = shard_ctx[t].span_id;
      prev = fabric.noc().inject(resp);

      attribute_packet_pair(fabric, t, cmd, resp);
    }
    if (telemetry::enabled()) {
      const auto tid = static_cast<std::uint32_t>(t);
      telemetry::attribute_energy(telemetry::AttrLayer::kCrossbar, tid, tid,
                                  tile_delta[t].value());
    }
  }
  finish_run(fabric, before, out.run);
  for (std::size_t t = 0; t < tiles; ++t)
    out.run.compute_energy += tile_delta[t];
  out.run.trace_id = ctx.trace_id;
  return out;
}

ShardedCamBank::ShardedCamBank(TileFabric& fabric, const CamConfig& per_tile)
    : fabric_(fabric), per_tile_(per_tile) {
  cams_.reserve(fabric_.tiles());
  for (std::size_t t = 0; t < fabric_.tiles(); ++t)
    cams_.emplace_back(per_tile_);
}

CrsCam& ShardedCamBank::cam(std::size_t tile) {
  MEMCIM_CHECK(tile < cams_.size());
  return cams_[tile];
}

ShardedCamBank::Location ShardedCamBank::locate(std::size_t global_row) const {
  MEMCIM_CHECK_MSG(global_row < rows(), "global CAM row out of range");
  return {global_row / per_tile_.rows, global_row % per_tile_.rows};
}

void ShardedCamBank::write_row(std::size_t global_row,
                               const std::vector<bool>& word) {
  const Location loc = locate(global_row);
  cams_[loc.tile].write_row(loc.row, word);
}

void ShardedCamBank::write_row_ternary(std::size_t global_row,
                                       const std::vector<CamBit>& word) {
  const Location loc = locate(global_row);
  cams_[loc.tile].write_row_ternary(loc.row, word);
}

void ShardedCamBank::inject_stuck(std::size_t global_row, std::size_t bit,
                                  bool stuck_one) {
  const Location loc = locate(global_row);
  cams_[loc.tile].inject_stuck(loc.row, bit, stuck_one);
}

ShardedCamBank::BankSearchResult ShardedCamBank::search(
    const std::vector<bool>& key) {
  static telemetry::SpanSite span_site("workload.sharded_cam");
  const telemetry::TraceContextScope root_scope(run_root_context());
  telemetry::Span span(span_site);
  const telemetry::TraceContext ctx = telemetry::current_trace_context();

  std::vector<CamSearchResult> per_tile(cams_.size());
  std::vector<telemetry::TraceContext> shard_ctx(cams_.size());
  parallel_for(0, cams_.size(), 1, [&](std::size_t t) {
    const telemetry::TileScope tile_scope(static_cast<std::uint32_t>(t));
    telemetry::Span compute_span(shard_compute_site());
    shard_ctx[t] = telemetry::current_trace_context();
    per_tile[t] = cams_[t].search(key);
  });

  BankSearchResult out;
  for (std::size_t t = 0; t < cams_.size(); ++t)
    for (const std::size_t r : per_tile[t].matching_rows)
      out.matching_rows.push_back(t * per_tile_.rows + r);

  const NocSnapshot before = noc_snapshot(fabric_.noc());
  const NocParams& noc_params = fabric_.config().noc;
  const std::size_t key_flits =
      flits_for_bits(64 + per_tile_.word_bits, noc_params);
  const std::size_t resp_flits =
      flits_for_bits(64 + per_tile_.rows, noc_params);
  for (std::size_t t = 0; t < cams_.size(); ++t) {
    NocPacket cmd;
    cmd.src = fabric_.host();
    cmd.dst = t;
    cmd.flits = key_flits;
    cmd.tag = 2 * t;
    cmd.release = before.now;
    cmd.fingerprint = mix_fingerprint(0xCA4Bull ^ (t << 8));
    cmd.trace_id = ctx.trace_id;
    cmd.parent_span = ctx.span_id;
    const std::size_t cmd_handle = fabric_.noc().inject(cmd);

    const NocCycle compute = fabric_.compute_cycles(per_tile[t].latency);
    fabric_.note_busy(t, compute, static_cast<std::uint32_t>(t));

    NocPacket resp;
    resp.src = t;
    resp.dst = fabric_.host();
    resp.flits = resp_flits;
    resp.tag = 2 * t + 1;
    resp.after = cmd_handle;
    resp.release = compute;
    resp.fingerprint =
        mix_fingerprint(0xB4CAull ^ (t << 8) ^ per_tile[t].matching_rows.size());
    resp.trace_id = shard_ctx[t].trace_id;
    resp.parent_span = shard_ctx[t].span_id;
    (void)fabric_.noc().inject(resp);

    attribute_packet_pair(fabric_, t, cmd, resp);
    if (telemetry::enabled()) {
      const auto tid = static_cast<std::uint32_t>(t);
      telemetry::attribute_energy(telemetry::AttrLayer::kLogic, tid, tid,
                                  per_tile[t].energy.value());
    }
  }
  finish_run(fabric_, before, out.run);
  for (std::size_t t = 0; t < cams_.size(); ++t)
    out.run.compute_energy += per_tile[t].energy;
  out.run.trace_id = ctx.trace_id;
  return out;
}

Energy ShardedCamBank::compute_energy() const {
  Energy total{0.0};
  for (const CrsCam& c : cams_) total += c.total_energy();
  return total;
}

}  // namespace memcim
