// The mathematics workload of Section III.B.2: a large batch of
// independent 32-bit additions ("here we assume 10^6 parallel addition
// operations").  Besides the closed-form spec used by the Table 2
// evaluator, this module runs the batch *functionally* on a farm of
// CRS TC-adders so results, pulse counts and switching energy come from
// the device models.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/rng.h"
#include "common/units.h"
#include "device/crs.h"
#include "logic/tc_adder.h"

namespace memcim {

struct ParallelAddParams {
  std::size_t operations = 1024;  ///< batch size (paper: 10^6)
  std::size_t width = 32;         ///< operand width in bits
  std::size_t adders = 256;       ///< physical adder farm size
  /// Called once on the freshly built farm before any addition runs —
  /// the fault-campaign hook (src/fault/) pins stuck cells here.  The
  /// indirection keeps workloads independent of the fault subsystem.
  std::function<void(std::vector<CrsTcAdder>&)> farm_hook;
};

struct ParallelAddResult {
  std::vector<std::uint64_t> sums;
  std::uint64_t total_pulses = 0;
  Energy total_energy{0.0};
  /// Wall latency: batches run back-to-back, adders within a batch in
  /// parallel → ceil(ops/adders) · (4N+5) pulses.
  Time latency{0.0};
  std::uint64_t mismatches = 0;  ///< vs the golden CPU adds (must be 0)
};

/// Generate `operations` random operand pairs and add them on the CRS
/// adder farm, verifying every result against native addition.
[[nodiscard]] ParallelAddResult run_parallel_add(const ParallelAddParams& params,
                                                 const CrsCellParams& cell,
                                                 Rng& rng);

}  // namespace memcim
