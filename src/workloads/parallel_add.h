// The mathematics workload of Section III.B.2: a large batch of
// independent 32-bit additions ("here we assume 10^6 parallel addition
// operations").  Besides the closed-form spec used by the Table 2
// evaluator, this module runs the batch *functionally* on a farm of
// CRS TC-adders so results, pulse counts and switching energy come from
// the device models.
//
// Two execution engines produce bitwise-identical results (sums,
// pulses, energy, latency, and every telemetry tally):
//
//   * scalar — one CrsTcAdder device model per farm slot, pulses walked
//     one at a time.  Required whenever fault hooks are armed (the
//     hooks mutate per-cell device state mid-schedule).
//   * packed — the compiled lane-block fast path (logic/packed_adder.h)
//     with exact cost-book replay.  The default when no hooks are set.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/rng.h"
#include "common/units.h"
#include "device/crs.h"
#include "logic/tc_adder.h"

namespace memcim {

/// Fan-out grain of the adder farm: ops per chunk on the scalar path,
/// converted to whole 64-op lane blocks on the packed path.  Tuned so
/// a chunk amortizes the pool hand-off but a default farm still splits
/// across workers.
inline constexpr std::size_t kParallelAddChunkGrain = 8;

/// Which adder engine run_parallel_add uses.
enum class AdderEngine : std::uint8_t {
  kAuto,    ///< packed fast path unless fault hooks are armed
  kPacked,  ///< packed (still falls back to scalar when hooks are armed)
  kScalar,  ///< force the per-device scalar farm
};

struct ParallelAddParams {
  std::size_t operations = 1024;  ///< batch size (paper: 10^6)
  std::size_t width = 32;         ///< operand width in bits
  std::size_t adders = 256;       ///< physical adder farm size
  /// Called once on the freshly built farm before any addition runs —
  /// the fault-campaign hook (src/fault/) pins stuck cells here.  The
  /// indirection keeps workloads independent of the fault subsystem.
  /// Setting it forces the scalar engine: faults need real devices.
  std::function<void(std::vector<CrsTcAdder>&)> farm_hook;
  AdderEngine engine = AdderEngine::kAuto;
  /// Parallel chunk grain (ops); see kParallelAddChunkGrain.
  std::size_t chunk_grain = kParallelAddChunkGrain;
  /// Record ParallelAddResult::op_energy — the exact per-op doubles a
  /// sharded run re-folds in global op order so its totals are bitwise
  /// equal to a serial golden replay of the same shard plan.
  bool record_per_op = false;
};

struct ParallelAddResult {
  std::vector<std::uint64_t> sums;
  std::uint64_t total_pulses = 0;
  Energy total_energy{0.0};
  /// Wall latency: batches run back-to-back, adders within a batch in
  /// parallel → ceil(ops/adders) · (4N+5) pulses.
  Time latency{0.0};
  std::uint64_t mismatches = 0;  ///< vs the golden CPU adds (must be 0)
  bool used_packed_engine = false;  ///< which engine actually ran
  /// Cell state transitions of the whole run (endurance/energy window
  /// tally; identical between engines and across shardings).
  std::uint64_t transitions = 0;
  /// Per-op switching energy in joules, exactly as accumulated into
  /// total_energy; filled only when ParallelAddParams::record_per_op.
  std::vector<double> op_energy;
};

/// Generate `operations` random operand pairs and add them on the CRS
/// adder farm, verifying every result against native addition.
[[nodiscard]] ParallelAddResult run_parallel_add(const ParallelAddParams& params,
                                                 const CrsCellParams& cell,
                                                 Rng& rng);

/// Run a caller-supplied operand batch (sizes must equal
/// params.operations) on a fresh farm.  This is the sharding seam: the
/// multi-tile layer draws all operands once in global op order, slices
/// them per shard, and calls this on every tile — each tile builds the
/// full `params.adders` farm (hardware scales with tiles) and applies
/// the same farm_hook, so a shard whose begin is batch-aligned
/// reproduces the exact per-op pulse schedules of a serial golden
/// replay of the same plan.
[[nodiscard]] ParallelAddResult run_parallel_add_ops(
    const ParallelAddParams& params, const CrsCellParams& cell,
    const std::vector<std::uint64_t>& op_a,
    const std::vector<std::uint64_t>& op_b);

}  // namespace memcim
