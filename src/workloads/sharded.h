// Sharded execution of the three data-intensive workloads on the
// multi-tile fabric (arch/tile_fabric.h): the paper's Figure 2 scaled
// out, with inter-tile traffic costed by the mesh NoC instead of
// assumed free.
//
// Execution model (all three workloads):
//   * operands/database rows are *resident in the tiles* — the
//     computation-in-memory premise — so the host only ships small
//     command descriptors out and completion descriptors back;
//   * tile compute runs on the process thread pool (one task per
//     shard), then the host↔tile traffic replays in one NoC co-sim
//     session: each result packet depends on its command packet with a
//     release offset equal to the tile's compute time in NoC cycles,
//     so compute and communication overlap exactly as they would in
//     hardware;
//   * every merge walks shards in tile order and every total is
//     re-folded in global item order, so results — including the
//     floating-point cost books — are bitwise identical at any
//     MEMCIM_THREADS setting and reproduce a serial golden replay of
//     the same shard plan (see tests/noc/sharded_golden_test.cpp).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "arch/partitioner.h"
#include "arch/tile_fabric.h"
#include "common/rng.h"
#include "logic/cam.h"
#include "workloads/parallel_add.h"

namespace memcim {

/// Fabric-side books of one sharded run (one NoC co-sim session).
struct ShardedRunStats {
  NocCycle makespan = 0;      ///< virtual cycles, first inject → last eject
  Time latency{0.0};          ///< makespan × NoC cycle time
  Energy compute_energy{0.0}; ///< Σ tile-side switching energy of the run
  Energy noc_energy{0.0};     ///< NoC dynamic energy of the run
  std::uint64_t flits = 0;
  std::uint64_t flit_hops = 0;
  double fabric_utilization = 0.0;  ///< Σ tile busy / (tiles · makespan)
  /// Trace id of the run's span tree (0 when telemetry is disabled).
  std::uint64_t trace_id = 0;

  [[nodiscard]] Energy energy() const { return compute_energy + noc_energy; }
};

// -- workload 2: the TC-adder farm (Section III.B.2) --------------------------

struct ShardedAddResult {
  /// Merged books in global op order.  `latency` is the
  /// serial-equivalent compute latency (Σ batch maxima, as a single
  /// farm would book it); the overlapped fabric latency is run.latency.
  ParallelAddResult merged;
  ShardPlan plan;
  ShardedRunStats run;
  /// Per-shard cell-transition windows (index = tile), for differential
  /// checks against a golden replay.
  std::vector<std::uint64_t> shard_transitions;
};

/// Shard `params.operations` additions over every fabric tile in
/// whole-batch units (batch = params.adders, so each op keeps its
/// physical adder slot), run the shards concurrently, replay the
/// command/completion traffic, and merge.  Each tile instantiates the
/// full `params.adders` farm and applies the same farm_hook.  The RNG
/// draw order matches run_parallel_add exactly.
[[nodiscard]] ShardedAddResult sharded_parallel_add(
    TileFabric& fabric, const ParallelAddParams& params,
    const CrsCellParams& cell, Rng& rng);

/// Serial golden reference: execute the identical shard plan one shard
/// at a time on freshly built farms and merge with the same fold.
/// sharded_parallel_add must match it bitwise in every book.
[[nodiscard]] ShardedAddResult replay_parallel_add_plan(
    const ShardPlan& plan, const ParallelAddParams& params,
    const CrsCellParams& cell, const std::vector<std::uint64_t>& op_a,
    const std::vector<std::uint64_t>& op_b);

// -- workload 1: DNA k-mer database search (Section III.B.1) ------------------

/// 2-bit-per-base encoding of `text[pos, pos+k)` (A=00, C=01, G=10,
/// T=11, LSB first) — one database row of 2k bits.
[[nodiscard]] std::vector<bool> encode_kmer(const std::string& text,
                                            std::size_t pos, std::size_t k);

struct ShardedSearchResult {
  /// matches[q] = global database rows equal to queries[q], ascending.
  std::vector<std::vector<std::size_t>> matches;
  ShardedRunStats run;
};

/// Store `database` rows across the fabric tiles (row-major fill, so
/// global row = tile · rows_per_tile + local row) and match every query
/// against every row.  database.size() must equal
/// fabric.tiles() · tile.rows and each word must be row_bits wide.
/// Queries execute as host-coordinated waves: tile t starts query q+1
/// only after its query-q completion reached the host.
[[nodiscard]] ShardedSearchResult sharded_kmer_search(
    TileFabric& fabric, const std::vector<std::vector<bool>>& database,
    const std::vector<std::vector<bool>>& queries);

// -- workload 3: the CAM bank (Section IV.C) ----------------------------------

/// A bank of per-tile CRS CAMs behind the fabric: global rows fill
/// tile-major (tile · rows_per_tile + local row), searches broadcast
/// the key and merge per-tile hits in tile order.
class ShardedCamBank {
 public:
  ShardedCamBank(TileFabric& fabric, const CamConfig& per_tile);

  [[nodiscard]] std::size_t rows() const {
    return cams_.size() * per_tile_.rows;
  }
  [[nodiscard]] CrsCam& cam(std::size_t tile);

  void write_row(std::size_t global_row, const std::vector<bool>& word);
  void write_row_ternary(std::size_t global_row,
                         const std::vector<CamBit>& word);
  /// Pin the value cell at (global_row, bit) stuck — forwarded to the
  /// owning tile's CAM (fault campaigns use global addressing).
  void inject_stuck(std::size_t global_row, std::size_t bit, bool stuck_one);

  struct BankSearchResult {
    std::vector<std::size_t> matching_rows;  ///< global, ascending
    ShardedRunStats run;
  };
  /// One search wave: broadcast key, match every tile concurrently,
  /// replay traffic, merge hits.
  [[nodiscard]] BankSearchResult search(const std::vector<bool>& key);

  /// Σ of the per-tile CAM lifetime energies.
  [[nodiscard]] Energy compute_energy() const;

 private:
  struct Location {
    std::size_t tile;
    std::size_t row;
  };
  [[nodiscard]] Location locate(std::size_t global_row) const;

  TileFabric& fabric_;
  CamConfig per_tile_;
  std::vector<CrsCam> cams_;
};

}  // namespace memcim
