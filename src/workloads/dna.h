// The healthcare workload of Section III.B.1: DNA short-read matching
// against a reference via a sorted index — "a practical solution used
// today for comparing two DNA sequences is based on the creation of a
// sorted index of the reference DNA".
//
// Substitution note (DESIGN.md §2): the paper assumes 200 GB of reads
// against a 3 GB human reference; we generate a seeded synthetic genome
// with the same shape parameters (coverage, read length, 4 comparisons
// per nucleotide) so the pipeline exercises the identical code path at
// laptop scale, while the closed-form operation counts reproduce the
// paper's arithmetic exactly.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/units.h"
#include "conv/memory_trace.h"

namespace memcim {

/// A nucleotide and its 2-bit encoding (A=00, C=01, G=10, T=11).
enum class Nucleotide : std::uint8_t { kA = 0, kC = 1, kG = 2, kT = 3 };

[[nodiscard]] char to_char(Nucleotide n);
[[nodiscard]] Nucleotide nucleotide_from_char(char c);

/// Random genome of `bases` nucleotides.
[[nodiscard]] std::string generate_genome(std::size_t bases, Rng& rng);

struct ReadSetParams {
  double coverage = 50.0;        ///< Table 1: reference covered 50×
  std::size_t read_length = 100; ///< Table 1: 100-character short reads
  double error_rate = 0.0;       ///< per-base substitution probability
};

struct ShortRead {
  std::string bases;
  std::size_t true_position = 0;  ///< where it was sampled from
};

/// Sample short reads uniformly from the genome at the given coverage.
[[nodiscard]] std::vector<ShortRead> generate_reads(const std::string& genome,
                                                    const ReadSetParams& params,
                                                    Rng& rng);

/// Sorted k-mer index over the reference: (k-mer start positions sorted
/// by their k-mer), queried by binary search.  Character comparisons
/// are counted — the paper's point is that this index "eliminates
/// available data locality in the reference, causing huge numbers of
/// cache misses".
class SortedIndex {
 public:
  SortedIndex(const std::string& reference, std::size_t k);

  [[nodiscard]] std::size_t k() const { return k_; }
  [[nodiscard]] std::size_t entries() const { return positions_.size(); }

  /// All reference positions whose k-mer equals `pattern` (first k
  /// characters used).  Comparison counting accumulates.
  [[nodiscard]] std::vector<std::size_t> lookup(const std::string& pattern);

  /// Thread-safe lookup: identical search, but character comparisons
  /// accumulate into `comparisons` instead of the shared member counter
  /// and no trace is recorded.  Lets the read-matching pipelines fan
  /// reads out across the thread pool against one shared index.
  [[nodiscard]] std::vector<std::size_t> lookup_counted(
      const std::string& pattern, std::uint64_t& comparisons) const;

  /// Character comparisons performed by all lookups so far.
  [[nodiscard]] std::uint64_t character_comparisons() const {
    return comparisons_;
  }

  /// Attach a trace sink: every subsequent lookup records its memory
  /// accesses (index entries, reference bytes, pattern bytes) at the
  /// virtual layout below, so a cache model can measure the hit rate
  /// the paper merely assumes.  Pass nullptr to detach.
  void attach_trace(MemoryTrace* trace) { trace_ = trace; }

  static constexpr std::uint64_t kIndexBase = 0x1000'0000;      ///< 8 B/entry
  static constexpr std::uint64_t kReferenceBase = 0x2000'0000;  ///< 1 B/char
  static constexpr std::uint64_t kPatternBase = 0x3000'0000;    ///< 1 B/char

 private:
  /// Three-way compare of the k-mer at `pos` with pattern, counting
  /// character comparisons into `comparisons` and recording accesses to
  /// `trace` when non-null.
  [[nodiscard]] int compare_at(std::size_t pos, const std::string& pattern,
                               std::uint64_t& comparisons,
                               MemoryTrace* trace) const;

  /// Shared search used by both lookup flavors.
  [[nodiscard]] std::vector<std::size_t> lookup_impl(
      const std::string& pattern, std::uint64_t& comparisons,
      MemoryTrace* trace) const;

  const std::string& reference_;
  std::size_t k_;
  std::vector<std::size_t> positions_;
  std::uint64_t comparisons_ = 0;
  MemoryTrace* trace_ = nullptr;
};

/// Result of matching a read set against a reference.
struct MatchStats {
  std::uint64_t reads_matched = 0;
  std::uint64_t reads_total = 0;
  std::uint64_t character_comparisons = 0;
  /// Comparisons in the paper's accounting: 4 per character (one per
  /// A/C/G/T one-hot lane).
  [[nodiscard]] std::uint64_t paper_comparisons() const {
    return 4 * character_comparisons;
  }
};

/// Full pipeline: index the reference, look up each read's leading
/// k-mer, verify candidates by full-read comparison.
[[nodiscard]] MatchStats match_reads(const std::string& reference,
                                     const std::vector<ShortRead>& reads,
                                     std::size_t k);

/// Error-tolerant pipeline: seed each read at several offsets (0, k,
/// 2k, …) so a sequencing error in one seed region does not kill the
/// lookup, and accept candidates with at most `max_mismatches`
/// mismatching characters over the full read — how real read mappers
/// handle the error rates the basic exact pipeline cannot.
[[nodiscard]] MatchStats match_reads_tolerant(
    const std::string& reference, const std::vector<ShortRead>& reads,
    std::size_t k, std::size_t seeds, std::size_t max_mismatches);

/// The paper's closed-form operation counts for the full-scale problem.
struct PaperDnaCounts {
  double short_reads;   ///< coverage · genome / read_length
  double comparisons;   ///< 4 · short_reads
};
[[nodiscard]] PaperDnaCounts paper_dna_counts(double coverage = 50.0,
                                              double genome_bases = 3e9,
                                              double read_length = 100.0);

}  // namespace memcim
