#include "workloads/dna.h"

#include <algorithm>

#include "common/error.h"
#include "common/parallel.h"
#include "telemetry/telemetry.h"

namespace memcim {

namespace {
constexpr char kAlphabet[] = {'A', 'C', 'G', 'T'};

/// Record one completed read-matching pass.  Called after the serial
/// reduction, so tallies are thread-count deterministic.
void record_dna_pass(const MatchStats& stats) {
  if (!telemetry::enabled()) return;
  using telemetry::Registry;
  static telemetry::Counter& reads =
      Registry::global().counter("workload.dna.reads");
  static telemetry::Counter& matched =
      Registry::global().counter("workload.dna.reads_matched");
  static telemetry::Counter& comparisons =
      Registry::global().counter("workload.dna.char_comparisons");
  reads.add(stats.reads_total);
  matched.add(stats.reads_matched);
  comparisons.add(stats.character_comparisons);
}
}  // namespace

char to_char(Nucleotide n) { return kAlphabet[static_cast<std::size_t>(n)]; }

Nucleotide nucleotide_from_char(char c) {
  switch (c) {
    case 'A': return Nucleotide::kA;
    case 'C': return Nucleotide::kC;
    case 'G': return Nucleotide::kG;
    case 'T': return Nucleotide::kT;
    default: break;
  }
  throw Error(std::string("invalid nucleotide character '") + c + "'");
}

std::string generate_genome(std::size_t bases, Rng& rng) {
  MEMCIM_CHECK(bases > 0);
  std::string genome(bases, 'A');
  for (char& c : genome)
    c = kAlphabet[static_cast<std::size_t>(rng.uniform_int(0, 3))];
  return genome;
}

std::vector<ShortRead> generate_reads(const std::string& genome,
                                      const ReadSetParams& params, Rng& rng) {
  MEMCIM_CHECK(params.read_length >= 1 &&
               params.read_length <= genome.size());
  MEMCIM_CHECK(params.coverage > 0.0);
  MEMCIM_CHECK(params.error_rate >= 0.0 && params.error_rate <= 1.0);
  const auto n_reads = static_cast<std::size_t>(
      params.coverage * static_cast<double>(genome.size()) /
      static_cast<double>(params.read_length));
  std::vector<ShortRead> reads;
  reads.reserve(n_reads);
  const auto max_start =
      static_cast<std::int64_t>(genome.size() - params.read_length);
  for (std::size_t i = 0; i < n_reads; ++i) {
    ShortRead read;
    read.true_position =
        static_cast<std::size_t>(rng.uniform_int(0, max_start));
    read.bases = genome.substr(read.true_position, params.read_length);
    if (params.error_rate > 0.0)
      for (char& c : read.bases)
        if (rng.bernoulli(params.error_rate))
          c = kAlphabet[static_cast<std::size_t>(rng.uniform_int(0, 3))];
    reads.push_back(std::move(read));
  }
  return reads;
}

SortedIndex::SortedIndex(const std::string& reference, std::size_t k)
    : reference_(reference), k_(k) {
  MEMCIM_CHECK_MSG(k >= 1 && k <= reference.size(),
                   "k must be within the reference length");
  positions_.resize(reference.size() - k + 1);
  for (std::size_t i = 0; i < positions_.size(); ++i) positions_[i] = i;
  // Sorting the index destroys the reference's spatial locality — the
  // effect the paper blames for the 50 % cache hit rate.
  std::sort(positions_.begin(), positions_.end(),
            [&](std::size_t a, std::size_t b) {
              return reference_.compare(a, k_, reference_, b, k_) < 0;
            });
}

int SortedIndex::compare_at(std::size_t pos, const std::string& pattern,
                            std::uint64_t& comparisons,
                            MemoryTrace* trace) const {
  for (std::size_t i = 0; i < k_; ++i) {
    ++comparisons;
    if (trace != nullptr) {
      trace->record(kReferenceBase + pos + i);
      trace->record(kPatternBase + i);
    }
    if (reference_[pos + i] != pattern[i])
      return reference_[pos + i] < pattern[i] ? -1 : 1;
  }
  return 0;
}

std::vector<std::size_t> SortedIndex::lookup(const std::string& pattern) {
  std::uint64_t comparisons = 0;
  std::vector<std::size_t> hits = lookup_impl(pattern, comparisons, trace_);
  comparisons_ += comparisons;
  return hits;
}

std::vector<std::size_t> SortedIndex::lookup_counted(
    const std::string& pattern, std::uint64_t& comparisons) const {
  return lookup_impl(pattern, comparisons, nullptr);
}

std::vector<std::size_t> SortedIndex::lookup_impl(const std::string& pattern,
                                                  std::uint64_t& comparisons,
                                                  MemoryTrace* trace) const {
  MEMCIM_CHECK_MSG(pattern.size() >= k_, "pattern shorter than k");
  // Binary search for the leftmost k-mer >= pattern.
  std::size_t lo = 0, hi = positions_.size();
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (trace != nullptr) trace->record(kIndexBase + 8 * mid);
    if (compare_at(positions_[mid], pattern, comparisons, trace) < 0)
      lo = mid + 1;
    else
      hi = mid;
  }
  std::vector<std::size_t> hits;
  while (lo < positions_.size()) {
    if (trace != nullptr) trace->record(kIndexBase + 8 * lo);
    if (compare_at(positions_[lo], pattern, comparisons, trace) != 0) break;
    hits.push_back(positions_[lo]);
    ++lo;
  }
  return hits;
}

MatchStats match_reads(const std::string& reference,
                       const std::vector<ShortRead>& reads, std::size_t k) {
  SortedIndex index(reference, k);
  MatchStats stats;
  stats.reads_total = reads.size();
  // Tile-level fan-out: each read is an independent CAM query against
  // the shared (read-only) index.  Per-read flags/counters are reduced
  // in read order afterwards, so totals are thread-count invariant.
  std::vector<std::uint8_t> matched(reads.size(), 0);
  std::vector<std::uint64_t> comparisons(reads.size(), 0);
  parallel_for(0, reads.size(), 16, [&](std::size_t i) {
    const ShortRead& read = reads[i];
    const std::vector<std::size_t> candidates =
        index.lookup_counted(read.bases, comparisons[i]);
    for (const std::size_t pos : candidates) {
      if (pos + read.bases.size() > reference.size()) continue;
      bool equal = true;
      for (std::size_t j = k; j < read.bases.size(); ++j) {
        ++comparisons[i];
        if (reference[pos + j] != read.bases[j]) {
          equal = false;
          break;
        }
      }
      if (equal) {
        matched[i] = 1;
        break;
      }
    }
  });
  for (std::size_t i = 0; i < reads.size(); ++i) {
    stats.reads_matched += matched[i];
    stats.character_comparisons += comparisons[i];
  }
  record_dna_pass(stats);
  return stats;
}

MatchStats match_reads_tolerant(const std::string& reference,
                                const std::vector<ShortRead>& reads,
                                std::size_t k, std::size_t seeds,
                                std::size_t max_mismatches) {
  MEMCIM_CHECK_MSG(seeds >= 1, "need at least one seed");
  SortedIndex index(reference, k);
  MatchStats stats;
  stats.reads_total = reads.size();
  std::vector<std::uint8_t> matched(reads.size(), 0);
  std::vector<std::uint64_t> comparisons(reads.size(), 0);
  parallel_for(0, reads.size(), 16, [&](std::size_t i) {
    const ShortRead& read = reads[i];
    for (std::size_t s = 0; s < seeds && !matched[i]; ++s) {
      const std::size_t offset = s * k;
      if (offset + k > read.bases.size()) break;
      const std::vector<std::size_t> candidates =
          index.lookup_counted(read.bases.substr(offset, k), comparisons[i]);
      for (const std::size_t seed_pos : candidates) {
        if (seed_pos < offset) continue;
        const std::size_t start = seed_pos - offset;
        if (start + read.bases.size() > reference.size()) continue;
        std::size_t mismatches = 0;
        for (std::size_t j = 0; j < read.bases.size(); ++j) {
          ++comparisons[i];
          if (reference[start + j] != read.bases[j] &&
              ++mismatches > max_mismatches)
            break;
        }
        if (mismatches <= max_mismatches) {
          matched[i] = 1;
          break;
        }
      }
    }
  });
  for (std::size_t i = 0; i < reads.size(); ++i) {
    stats.reads_matched += matched[i];
    stats.character_comparisons += comparisons[i];
  }
  record_dna_pass(stats);
  return stats;
}

PaperDnaCounts paper_dna_counts(double coverage, double genome_bases,
                                double read_length) {
  MEMCIM_CHECK(coverage > 0.0 && genome_bases > 0.0 && read_length > 0.0);
  PaperDnaCounts counts;
  counts.short_reads = coverage * genome_bases / read_length;
  counts.comparisons = 4.0 * counts.short_reads;
  return counts;
}

}  // namespace memcim
