#include "monitor/sampler.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <utility>

#include "common/error.h"
#include "telemetry/attribution.h"
#include "telemetry/trace_export.h"

namespace memcim::monitor {

namespace {

/// Static-lifetime instant-event names, one per health transition.
const std::string* instant_name(HealthEventKind kind) {
  static const std::string kNames[] = {
      "monitor.burn_rate_alert",      "monitor.burn_rate_resolved",
      "monitor.stall",                "monitor.stall_resolved",
      "monitor.queue_high_water",     "monitor.queue_high_water_resolved",
      "monitor.shed_spike",           "monitor.shed_spike_resolved",
  };
  return &kNames[static_cast<std::size_t>(kind)];
}

/// Exact count of samples strictly above `target` in a delta
/// histogram: total minus the bucket-prefix whose bounds are <=
/// target.  With `target` chosen on a bucket bound the split is exact.
std::uint64_t count_over(const telemetry::HistogramSample& h, double target) {
  std::uint64_t good = 0;
  for (std::size_t i = 0; i < h.upper_bounds.size(); ++i) {
    if (h.upper_bounds[i] > target) break;
    good += h.bucket_counts[i];
  }
  return h.count - good;
}

/// Interval-local quantile from the delta bucket counts alone: the
/// upper bound of the bucket holding the q-th sample.  Deliberately
/// NOT HistogramSample::percentile — that clamps to the live
/// histogram's min/max, which span the whole process (and any earlier
/// runs sharing the registry), so the clamp would leak run history
/// into the series.  Overflow-bucket samples saturate at the last
/// finite bound.
double bucket_quantile(const telemetry::HistogramSample& h, double q) {
  if (h.count == 0 || h.upper_bounds.empty()) return 0.0;
  const double fraction = std::min(std::max(q, 0.0), 100.0) / 100.0;
  auto rank = static_cast<std::uint64_t>(
      std::ceil(fraction * static_cast<double>(h.count)));
  rank = std::min(std::max<std::uint64_t>(rank, 1), h.count);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < h.bucket_counts.size(); ++i) {
    cumulative += h.bucket_counts[i];
    if (cumulative >= rank)
      return i < h.upper_bounds.size() ? h.upper_bounds[i]
                                       : h.upper_bounds.back();
  }
  return h.upper_bounds.back();
}

}  // namespace

TimeSeriesSampler::TimeSeriesSampler(SamplerConfig config, SloEngine* slo)
    : config_(config), slo_(slo) {
  MEMCIM_CHECK_MSG(config_.period_ns >= 1,
                   "sampler period must be >= 1 virtual ns");
  MEMCIM_CHECK_MSG(config_.capacity >= 1, "sampler ring needs capacity >= 1");
}

void TimeSeriesSampler::on_run_start(const serving::ProbeState& state) {
  (void)state;
  running_ = telemetry::enabled();
  if (!running_) return;
  interval_begin_ = 0;
  prev_ = telemetry::Registry::global().snapshot();
  const telemetry::AttrDelta totals =
      telemetry::AttributionBook::global().totals();
  prev_energy_aj_ = totals.energy_aj;
  prev_pulses_ = totals.pulses;
  // Anchor for stamping virtual-time health events onto the wall-time
  // Chrome-trace axis (same scheme as the mesh NoC's virtual spans).
  trace_wall_base_ns_ = telemetry::now_ns();
  slo_events_seen_ = slo_ != nullptr ? slo_->events().size() : 0;
}

void TimeSeriesSampler::on_sample(VirtualNs boundary,
                                  const serving::ProbeState& state) {
  if (!running_) return;
  close_interval(interval_begin_, boundary, state);
  interval_begin_ = boundary;
}

void TimeSeriesSampler::on_run_end(VirtualNs end,
                                   const serving::ProbeState& state) {
  if (!running_) return;
  // Close the final partial interval (zero-length when the run ended
  // exactly on a boundary).
  if (end > interval_begin_) {
    close_interval(interval_begin_, end, state);
    interval_begin_ = end;
  }
  running_ = false;
}

void TimeSeriesSampler::close_interval(VirtualNs begin, VirtualNs end,
                                       const serving::ProbeState& state) {
  telemetry::MetricsSnapshot snap = telemetry::Registry::global().snapshot();
  telemetry::MetricsSnapshot d;
  std::string error;
  MEMCIM_CHECK_MSG(snap.delta(prev_, d, error),
                   "time-series interval delta failed: " << error);

  Sample s;
  s.interval = intervals_++;
  s.begin = begin;
  s.end = end;
  s.arrivals = d.counter("serving.arrivals");
  s.admitted = d.counter("serving.admitted");
  s.shed = d.counter("serving.shed");
  s.completed = d.counter("serving.completed");
  s.batches = d.counter("serving.batches");
  s.partial_batches = d.counter("serving.batches_partial");
  s.batch_lanes = d.counter("serving.batch_lanes");
  s.flits = d.counter("serving.flits");
  s.queue_depth = state.queue_depth;

  const telemetry::AttrDelta totals =
      telemetry::AttributionBook::global().totals();
  s.energy_aj = totals.energy_aj - prev_energy_aj_;
  s.pulses = totals.pulses - prev_pulses_;
  prev_energy_aj_ = totals.energy_aj;
  prev_pulses_ = totals.pulses;

  SloEngine::IntervalInput input;
  input.begin = begin;
  input.end = end;
  input.interval = s.interval;
  input.arrivals = s.arrivals;
  input.shed = s.shed;
  input.completed = s.completed;
  input.queue_depth = state.queue_depth;

  for (std::size_t c = 0; c < kRequestClasses; ++c) {
    const std::string cls = to_string(static_cast<RequestClass>(c));
    Sample::PerClass& pc = s.classes[c];
    pc.admitted = d.counter("serving.admitted." + cls);
    pc.shed = d.counter("serving.shed." + cls);
    pc.completed = d.counter("serving.completed." + cls);
    input.class_completed[c] = pc.completed;
    if (const telemetry::HistogramSample* h =
            d.histogram("serving.latency_ns." + cls);
        h != nullptr && h->count > 0) {
      pc.p50_ns = bucket_quantile(*h, 50.0);
      pc.p95_ns = bucket_quantile(*h, 95.0);
      pc.p99_ns = bucket_quantile(*h, 99.0);
      if (slo_ != nullptr) {
        for (const SloObjective& o : slo_->config().objectives) {
          if (o.kind != SloKind::kLatency ||
              static_cast<std::size_t>(o.cls) != c)
            continue;
          input.class_bad_latency[c] =
              count_over(*h, static_cast<double>(o.latency_target_ns));
          break;
        }
      }
    }
  }

  const double span_s = static_cast<double>(end - begin) / 1e9;
  s.qps = span_s > 0.0 ? static_cast<double>(s.completed) / span_s : 0.0;
  s.shed_rate = s.arrivals == 0 ? 0.0
                                : static_cast<double>(s.shed) /
                                      static_cast<double>(s.arrivals);
  s.occupancy = s.batches == 0 ? 0.0
                               : static_cast<double>(s.batch_lanes) /
                                     static_cast<double>(s.batches);

  samples_.push_back(std::move(s));
  telemetry::Registry::global().counter("monitor.samples").add(1);
  if (samples_.size() > config_.capacity) {
    samples_.pop_front();
    ++dropped_;
    telemetry::Registry::global().counter("monitor.samples_dropped").add(1);
  }
  prev_ = std::move(snap);

  if (slo_ != nullptr) {
    slo_->observe(input);
    // Stamp new health transitions onto the trace timeline: virtual
    // event instants anchored at the run's wall-clock start.
    const std::vector<HealthEvent>& events = slo_->events();
    for (; slo_events_seen_ < events.size(); ++slo_events_seen_) {
      const HealthEvent& e = events[slo_events_seen_];
      telemetry::emit_instant_event(instant_name(e.kind),
                                    trace_wall_base_ns_ + e.at, 0,
                                    telemetry::kNoTile);
    }
  }
}

}  // namespace memcim::monitor
