// The time-series sampler: a ServiceProbe that turns the serving
// layer's end-of-run aggregate telemetry into a per-interval series.
//
// At every sample boundary (a multiple of the configured virtual-ns
// period) the sampler snapshots the telemetry registry and the
// attribution book, computes the exact delta against the previous
// boundary's snapshot (MetricsSnapshot::delta — u64 subtraction, no
// estimation), and appends one Sample to a bounded ring.  Interval
// latency quantiles come from per-interval histogram-bucket deltas
// alone (bucket upper bounds, no min/max clamp — the live histogram's
// min/max span the whole process, not the interval), so a latency
// cliff in interval 17 is visible in interval 17 even when the
// run-wide p99 barely moves, and the series is independent of any
// earlier run sharing the registry.
//
// Everything recorded is derived from exact thread-invariant tallies
// on the virtual clock, so the whole series — and the SLO engine's
// HealthEvent sequence evaluated from it — is bitwise identical at
// any MEMCIM_THREADS setting.  (Trace ids are deliberately *not*
// recorded in samples: span ids are process-unique, not
// run-reproducible.)
//
// The sampler is enabled()-gated like every telemetry sink: with
// telemetry disabled it records nothing and costs one branch per
// boundary.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <vector>

#include "monitor/slo.h"
#include "serving/service.h"
#include "telemetry/telemetry.h"

namespace memcim::monitor {

struct SamplerConfig {
  /// Sampling period on the serving virtual clock.
  VirtualNs period_ns = 100'000;
  /// Ring capacity: the oldest samples drop past this (the drop count
  /// is reported, never silent).
  std::size_t capacity = 4096;
};

/// One closed interval [begin, end) of the series.  Counts are exact
/// interval deltas; derived rates are normalised by the actual
/// interval length (the final interval may be shorter than the
/// period).
struct Sample {
  std::uint64_t interval = 0;  ///< global index (survives ring drops)
  VirtualNs begin = 0;
  VirtualNs end = 0;
  std::uint64_t arrivals = 0;
  std::uint64_t admitted = 0;
  std::uint64_t shed = 0;
  std::uint64_t completed = 0;
  std::uint64_t batches = 0;
  std::uint64_t partial_batches = 0;
  std::uint64_t batch_lanes = 0;
  std::uint64_t flits = 0;
  /// Attribution-book column deltas (exact u64; see attribution.h).
  std::uint64_t energy_aj = 0;
  std::uint64_t pulses = 0;
  /// Queue depth per class at the interval's end boundary.
  std::array<std::size_t, kRequestClasses> queue_depth{};
  struct PerClass {
    std::uint64_t admitted = 0;
    std::uint64_t shed = 0;
    std::uint64_t completed = 0;
    double p50_ns = 0.0;
    double p95_ns = 0.0;
    double p99_ns = 0.0;
  };
  std::array<PerClass, kRequestClasses> classes{};
  // Derived, normalised by (end - begin):
  double qps = 0.0;        ///< completions per virtual second
  double shed_rate = 0.0;  ///< shed / arrivals (0 with no arrivals)
  double occupancy = 0.0;  ///< batch_lanes / batches (0 with no batches)
};

/// The monitoring plane's ServiceProbe.  Attach with
/// WorkloadService::set_probe(&sampler); optionally wire an SloEngine
/// so every closed interval is evaluated and alerts land on the
/// Chrome-trace timeline as instant events.
class TimeSeriesSampler : public serving::ServiceProbe {
 public:
  /// `slo` may be nullptr (series only); the caller keeps ownership
  /// and the engine must outlive the sampler's callbacks.
  explicit TimeSeriesSampler(SamplerConfig config, SloEngine* slo = nullptr);

  [[nodiscard]] VirtualNs sample_period() const override {
    return config_.period_ns;
  }
  void on_run_start(const serving::ProbeState& state) override;
  void on_sample(VirtualNs boundary,
                 const serving::ProbeState& state) override;
  void on_run_end(VirtualNs end, const serving::ProbeState& state) override;

  [[nodiscard]] const SamplerConfig& config() const { return config_; }
  /// Ring contents, oldest first.
  [[nodiscard]] const std::deque<Sample>& samples() const { return samples_; }
  /// Every interval ever closed (>= samples().size()).
  [[nodiscard]] std::uint64_t total_intervals() const { return intervals_; }
  /// Samples evicted from the ring.
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }
  [[nodiscard]] const SloEngine* slo() const { return slo_; }

 private:
  void close_interval(VirtualNs begin, VirtualNs end,
                      const serving::ProbeState& state);

  SamplerConfig config_;
  SloEngine* slo_;
  bool running_ = false;
  VirtualNs interval_begin_ = 0;
  std::uint64_t intervals_ = 0;
  std::uint64_t dropped_ = 0;
  std::size_t slo_events_seen_ = 0;
  std::uint64_t trace_wall_base_ns_ = 0;
  telemetry::MetricsSnapshot prev_;
  std::uint64_t prev_energy_aj_ = 0;
  std::uint64_t prev_pulses_ = 0;
  std::deque<Sample> samples_;
};

}  // namespace memcim::monitor
