#include "monitor/slo.h"

#include <algorithm>
#include <limits>

#include "common/error.h"

namespace memcim::monitor {

std::string_view to_string(SloKind kind) {
  switch (kind) {
    case SloKind::kAvailability:
      return "availability";
    case SloKind::kLatency:
      return "latency";
  }
  return "?";
}

std::string_view to_string(HealthEventKind kind) {
  switch (kind) {
    case HealthEventKind::kBurnRateAlert:
      return "burn_rate_alert";
    case HealthEventKind::kBurnRateResolved:
      return "burn_rate_resolved";
    case HealthEventKind::kStall:
      return "stall";
    case HealthEventKind::kStallResolved:
      return "stall_resolved";
    case HealthEventKind::kQueueHighWater:
      return "queue_high_water";
    case HealthEventKind::kQueueHighWaterResolved:
      return "queue_high_water_resolved";
    case HealthEventKind::kShedSpike:
      return "shed_spike";
    case HealthEventKind::kShedSpikeResolved:
      return "shed_spike_resolved";
  }
  return "?";
}

bool is_alert(HealthEventKind kind) {
  switch (kind) {
    case HealthEventKind::kBurnRateAlert:
    case HealthEventKind::kStall:
    case HealthEventKind::kQueueHighWater:
    case HealthEventKind::kShedSpike:
      return true;
    default:
      return false;
  }
}

SloConfig default_serving_slos(std::size_t queue_high_water) {
  SloConfig cfg;
  SloObjective availability;
  availability.name = "availability";
  availability.kind = SloKind::kAvailability;
  availability.target_ratio = 0.999;
  cfg.objectives.push_back(availability);
  for (std::size_t c = 0; c < kRequestClasses; ++c) {
    SloObjective latency;
    latency.name = std::string("latency.") +
                   to_string(static_cast<RequestClass>(c));
    latency.kind = SloKind::kLatency;
    latency.cls = static_cast<RequestClass>(c);
    latency.target_ratio = 0.999;
    latency.latency_target_ns = 65536;  // a serving.latency_ns bucket bound
    cfg.objectives.push_back(latency);
  }
  cfg.watchdog.stall_intervals = 5;
  cfg.watchdog.queue_high_water = queue_high_water;
  cfg.watchdog.shed_spike_rate = 0.5;
  cfg.watchdog.shed_spike_min_arrivals = 100;
  return cfg;
}

namespace {

/// Burn over a window of (bad, total) interval pairs: summed counts,
/// not averaged per-interval fractions, so quiet intervals don't
/// dilute a burst unfairly.
double window_burn(
    const std::deque<std::pair<std::uint64_t, std::uint64_t>>& window,
    std::size_t span, double target) {
  std::uint64_t bad = 0;
  std::uint64_t total = 0;
  const std::size_t n = std::min(span, window.size());
  for (std::size_t i = window.size() - n; i < window.size(); ++i) {
    bad += window[i].first;
    total += window[i].second;
  }
  if (total == 0) return 0.0;
  const double budget = 1.0 - target;
  if (budget <= 0.0) return bad == 0 ? 0.0 : std::numeric_limits<double>::infinity();
  return (static_cast<double>(bad) / static_cast<double>(total)) / budget;
}

}  // namespace

SloEngine::SloEngine(SloConfig config) : config_(std::move(config)) {
  for (const SloObjective& o : config_.objectives) {
    MEMCIM_CHECK_MSG(o.target_ratio > 0.0 && o.target_ratio < 1.0,
                     "SLO target_ratio must be in (0, 1)");
    MEMCIM_CHECK_MSG(o.fast_window >= 1 && o.slow_window >= o.fast_window,
                     "SLO windows need 1 <= fast <= slow");
    MEMCIM_CHECK_MSG(o.burn_threshold > 0.0, "burn threshold must be > 0");
  }
  objectives_.resize(config_.objectives.size());
}

void SloEngine::emit(HealthEventKind kind, const std::string& rule,
                     const IntervalInput& in, double value, double threshold) {
  HealthEvent e;
  e.kind = kind;
  e.rule = rule;
  e.at = in.end;
  e.interval = in.interval;
  e.value = value;
  e.threshold = threshold;
  events_.push_back(std::move(e));
  if (is_alert(kind)) ++alerts_fired_;
}

void SloEngine::observe(const IntervalInput& in) {
  for (std::size_t i = 0; i < config_.objectives.size(); ++i) {
    const SloObjective& o = config_.objectives[i];
    ObjectiveState& st = objectives_[i];
    std::uint64_t bad = 0;
    std::uint64_t total = 0;
    if (o.kind == SloKind::kAvailability) {
      bad = in.shed;
      total = in.arrivals;
    } else {
      const auto c = static_cast<std::size_t>(o.cls);
      bad = in.class_bad_latency[c];
      total = in.class_completed[c];
    }
    st.window.push_back({bad, total});
    while (st.window.size() > o.slow_window) st.window.pop_front();
    const double fast = window_burn(st.window, o.fast_window, o.target_ratio);
    const double slow = window_burn(st.window, o.slow_window, o.target_ratio);
    const bool firing = fast > o.burn_threshold && slow > o.burn_threshold;
    if (firing && !st.active)
      emit(HealthEventKind::kBurnRateAlert, o.name, in, std::min(fast, slow),
           o.burn_threshold);
    else if (!firing && st.active)
      emit(HealthEventKind::kBurnRateResolved, o.name, in,
           std::min(fast, slow), o.burn_threshold);
    st.active = firing;
  }

  const WatchdogConfig& wd = config_.watchdog;
  static const std::string kStallRule = "watchdog.stall";
  static const std::string kQueueRule = "watchdog.queue_high_water";
  static const std::string kShedRule = "watchdog.shed_spike";

  if (wd.stall_intervals > 0) {
    std::size_t queued = 0;
    for (const std::size_t d : in.queue_depth) queued += d;
    if (queued > 0 && in.completed == 0)
      ++stall_run_;
    else
      stall_run_ = 0;
    const bool firing = stall_run_ >= wd.stall_intervals;
    if (firing && !stall_active_)
      emit(HealthEventKind::kStall, kStallRule, in,
           static_cast<double>(stall_run_),
           static_cast<double>(wd.stall_intervals));
    else if (!firing && stall_active_)
      emit(HealthEventKind::kStallResolved, kStallRule, in,
           static_cast<double>(stall_run_),
           static_cast<double>(wd.stall_intervals));
    stall_active_ = firing;
  }

  if (wd.queue_high_water > 0) {
    std::size_t deepest = 0;
    for (const std::size_t d : in.queue_depth) deepest = std::max(deepest, d);
    const bool firing = deepest >= wd.queue_high_water;
    if (firing && !queue_active_)
      emit(HealthEventKind::kQueueHighWater, kQueueRule, in,
           static_cast<double>(deepest),
           static_cast<double>(wd.queue_high_water));
    else if (!firing && queue_active_)
      emit(HealthEventKind::kQueueHighWaterResolved, kQueueRule, in,
           static_cast<double>(deepest),
           static_cast<double>(wd.queue_high_water));
    queue_active_ = firing;
  }

  if (wd.shed_spike_rate > 0.0) {
    const double rate =
        in.arrivals == 0 ? 0.0
                         : static_cast<double>(in.shed) /
                               static_cast<double>(in.arrivals);
    const bool firing =
        in.arrivals >= wd.shed_spike_min_arrivals && rate > wd.shed_spike_rate;
    if (firing && !shed_active_)
      emit(HealthEventKind::kShedSpike, kShedRule, in, rate,
           wd.shed_spike_rate);
    else if (!firing && shed_active_)
      emit(HealthEventKind::kShedSpikeResolved, kShedRule, in, rate,
           wd.shed_spike_rate);
    shed_active_ = firing;
  }
}

bool SloEngine::any_active() const {
  for (const ObjectiveState& st : objectives_)
    if (st.active) return true;
  return stall_active_ || queue_active_ || shed_active_;
}

}  // namespace memcim::monitor
