// Exporters for the monitoring plane:
//
//   * timeseries_json — the "memcim-timeseries-v1" envelope: sampler
//     config echo, the ring's samples, and (when an SloEngine is
//     wired) the objective set, every HealthEvent, and the alert
//     tally.  Parseable by the strict RFC 8259 parser
//     (telemetry/json_parser.h) and rendered by `memcim-report
//     monitor`.  Deliberately free of trace/span ids: those are
//     process-unique, so omitting them keeps the document bitwise
//     identical across runs and MEMCIM_THREADS settings.
//
//   * openmetrics_text — Prometheus/OpenMetrics text exposition of a
//     metrics snapshot (counters → `_total`, gauges, histograms →
//     cumulative `_bucket{le=...}`/`_count`), with optional exemplars
//     carrying trace ids so a scraped latency bucket links back to a
//     concrete request's trace.  Histogram `_sum` is omitted: the
//     telemetry histograms track exact bucket tallies, not a sample
//     sum, and inventing one would break the "no estimated numbers"
//     contract.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "monitor/sampler.h"
#include "telemetry/telemetry.h"

namespace memcim::monitor {

/// The memcim-timeseries-v1 document.  `engine` may be nullptr (series
/// without an SLO block); when the sampler owns a wired engine, pass
/// `sampler.slo()`.
[[nodiscard]] std::string timeseries_json(const TimeSeriesSampler& sampler,
                                          const SloEngine* engine);

/// timeseries_json written to `path`.
void write_timeseries_json(const std::string& path,
                           const TimeSeriesSampler& sampler,
                           const SloEngine* engine);

/// One OpenMetrics exemplar: attaches to the smallest bucket of
/// histogram `metric` whose bound is >= `value` (dots in `metric` as
/// in the registry; the writer sanitises).
struct Exemplar {
  std::string metric;
  double value = 0.0;
  std::uint64_t trace_id = 0;
  std::uint64_t timestamp_ns = 0;  ///< virtual instant, echoed as-is
};

/// OpenMetrics text exposition of `snapshot`, terminated by `# EOF`.
/// Metric names are sanitised (dots → underscores, `memcim_` prefix).
[[nodiscard]] std::string openmetrics_text(
    const telemetry::MetricsSnapshot& snapshot,
    const std::vector<Exemplar>& exemplars = {});

/// openmetrics_text written to `path`.
void write_openmetrics(const std::string& path,
                       const telemetry::MetricsSnapshot& snapshot,
                       const std::vector<Exemplar>& exemplars = {});

}  // namespace memcim::monitor
