// Declarative service-level objectives over the serving time series,
// evaluated with SRE-style multi-window burn-rate alerting plus
// watchdog rules for failure shapes a quantile target can't see.
//
// Burn rate is the classic definition: with an objective "ratio of
// good events >= target", an interval's burn is
//
//   burn = bad_fraction / (1 - target)
//
// so burn 1.0 consumes the error budget exactly at the allowed pace
// and burn 10 consumes it 10x too fast.  An alert fires only when the
// burn over the *fast* window (default 5 intervals) AND the *slow*
// window (default 60) both exceed the threshold — the fast window
// gives low detection latency, the slow window suppresses one-interval
// blips.  Windows shorter than configured (early in a run) evaluate
// over the samples seen so far.
//
// All inputs are exact interval deltas on the serving layer's virtual
// clock, so every verdict — and the exact HealthEvent sequence — is
// bitwise deterministic at any MEMCIM_THREADS setting.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <vector>

#include "serving/request.h"

namespace memcim::monitor {

using serving::kRequestClasses;
using serving::RequestClass;
using serving::VirtualNs;

enum class SloKind : std::uint8_t {
  kAvailability,  ///< good = admitted (not shed); bad = shed arrivals
  kLatency,       ///< good = completions at or under latency_target_ns
};

[[nodiscard]] std::string_view to_string(SloKind kind);

struct SloObjective {
  std::string name;
  SloKind kind = SloKind::kAvailability;
  /// Latency objectives are per-class; ignored for availability.
  RequestClass cls = RequestClass::kAddition;
  /// Required good fraction (e.g. 0.999 = "three nines").
  double target_ratio = 0.999;
  /// Latency bound in virtual ns.  Pick a latency-histogram bucket
  /// bound (64·2^k) so the sampler's bad count is an exact bucket
  /// suffix sum, not an interpolation.
  VirtualNs latency_target_ns = 65536;
  double burn_threshold = 10.0;
  std::size_t fast_window = 5;
  std::size_t slow_window = 60;
};

/// Watchdog rules: cheap structural checks per interval.  A zero
/// threshold disables the rule.
struct WatchdogConfig {
  /// Fire after this many consecutive intervals with queued work but
  /// zero completions (a wedged dispatcher).
  std::size_t stall_intervals = 5;
  /// Fire when any class's queue depth at an interval end reaches this.
  std::size_t queue_high_water = 0;
  /// Fire when an interval's shed fraction exceeds this...
  double shed_spike_rate = 0.0;
  /// ...over at least this many arrivals (suppresses tiny-sample noise).
  std::uint64_t shed_spike_min_arrivals = 100;
};

enum class HealthEventKind : std::uint8_t {
  kBurnRateAlert,
  kBurnRateResolved,
  kStall,
  kStallResolved,
  kQueueHighWater,
  kQueueHighWaterResolved,
  kShedSpike,
  kShedSpikeResolved,
};

[[nodiscard]] std::string_view to_string(HealthEventKind kind);
/// True for the four firing kinds (not the *Resolved pairs).
[[nodiscard]] bool is_alert(HealthEventKind kind);

/// One edge-triggered health transition, stamped with the virtual
/// instant (the interval's end boundary) it was detected at.
struct HealthEvent {
  HealthEventKind kind = HealthEventKind::kBurnRateAlert;
  std::string rule;            ///< objective name or watchdog rule name
  VirtualNs at = 0;            ///< interval end boundary
  std::uint64_t interval = 0;  ///< global interval index
  double value = 0.0;          ///< burn rate / depth / shed fraction
  double threshold = 0.0;
};

struct SloConfig {
  std::vector<SloObjective> objectives;
  WatchdogConfig watchdog;
};

/// The objective set bench_serving runs against the baseline trace:
/// 99.9% availability and per-class latency targets of 65536 virtual
/// ns at the 99.9% level, burn threshold 10 over 5/60-interval
/// windows, plus stall and shed-spike watchdogs.
[[nodiscard]] SloConfig default_serving_slos(std::size_t queue_high_water);

class SloEngine {
 public:
  explicit SloEngine(SloConfig config);

  /// Exact per-interval deltas the engine evaluates.  The sampler
  /// fills this from snapshot deltas (see sampler.h).
  struct IntervalInput {
    VirtualNs begin = 0;
    VirtualNs end = 0;
    std::uint64_t interval = 0;
    std::uint64_t arrivals = 0;
    std::uint64_t shed = 0;
    std::uint64_t completed = 0;
    std::array<std::uint64_t, kRequestClasses> class_completed{};
    /// Completions whose latency exceeded the matching objective's
    /// latency_target_ns (exact histogram-bucket suffix counts).
    std::array<std::uint64_t, kRequestClasses> class_bad_latency{};
    std::array<std::size_t, kRequestClasses> queue_depth{};
  };

  /// Evaluate one interval; fired/resolved transitions append to
  /// events() in a fixed order (objectives in config order, then
  /// stall, queue high-water, shed spike).
  void observe(const IntervalInput& in);

  [[nodiscard]] const SloConfig& config() const { return config_; }
  [[nodiscard]] const std::vector<HealthEvent>& events() const {
    return events_;
  }
  /// Count of firing events (is_alert kinds) so far.
  [[nodiscard]] std::uint64_t alerts_fired() const { return alerts_fired_; }
  /// True while any objective or watchdog is in the firing state.
  [[nodiscard]] bool any_active() const;

 private:
  struct ObjectiveState {
    std::deque<std::pair<std::uint64_t, std::uint64_t>> window;  // (bad, total)
    bool active = false;
  };

  void emit(HealthEventKind kind, const std::string& rule,
            const IntervalInput& in, double value, double threshold);

  SloConfig config_;
  std::vector<ObjectiveState> objectives_;
  std::vector<HealthEvent> events_;
  std::uint64_t alerts_fired_ = 0;
  std::size_t stall_run_ = 0;
  bool stall_active_ = false;
  bool queue_active_ = false;
  bool shed_active_ = false;
};

}  // namespace memcim::monitor
