#include "monitor/export.h"

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "telemetry/json_writer.h"

namespace memcim::monitor {

namespace {

void write_file(const std::string& path, const std::string& contents) {
  std::ofstream out(path);
  out << contents;
}

/// "serving.latency_ns.kmer" → "memcim_serving_latency_ns_kmer".
std::string sanitize(const std::string& name) {
  std::string out = "memcim_";
  out.reserve(out.size() + name.size());
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  return out;
}

/// Exposition-format number: exact integer text when integral (bucket
/// bounds are powers of two, counts are u64), shortest-round-trip
/// otherwise.
std::string format_number(double v) {
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 9.2e18) {
    return std::to_string(static_cast<std::int64_t>(v));
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

}  // namespace

std::string timeseries_json(const TimeSeriesSampler& sampler,
                            const SloEngine* engine) {
  telemetry::JsonWriter w;
  w.begin_object();
  w.key("schema").value("memcim-timeseries-v1");
  w.key("period_ns").value(sampler.config().period_ns);
  w.key("capacity").value(static_cast<std::uint64_t>(sampler.config().capacity));
  w.key("total_intervals").value(sampler.total_intervals());
  w.key("dropped").value(sampler.dropped());
  w.key("samples").begin_array();
  for (const Sample& s : sampler.samples()) {
    w.begin_object();
    w.key("interval").value(s.interval);
    w.key("begin_ns").value(s.begin);
    w.key("end_ns").value(s.end);
    w.key("arrivals").value(s.arrivals);
    w.key("admitted").value(s.admitted);
    w.key("shed").value(s.shed);
    w.key("completed").value(s.completed);
    w.key("batches").value(s.batches);
    w.key("partial_batches").value(s.partial_batches);
    w.key("batch_lanes").value(s.batch_lanes);
    w.key("flits").value(s.flits);
    w.key("energy_aj").value(s.energy_aj);
    w.key("pulses").value(s.pulses);
    w.key("qps").value(s.qps);
    w.key("shed_rate").value(s.shed_rate);
    w.key("occupancy").value(s.occupancy);
    w.key("queue_depth").begin_array();
    for (const std::size_t depth : s.queue_depth)
      w.value(static_cast<std::uint64_t>(depth));
    w.end_array();
    w.key("classes").begin_array();
    for (std::size_t c = 0; c < kRequestClasses; ++c) {
      const Sample::PerClass& pc = s.classes[c];
      w.begin_object();
      w.key("class").value(
          serving::to_string(static_cast<RequestClass>(c)));
      w.key("admitted").value(pc.admitted);
      w.key("shed").value(pc.shed);
      w.key("completed").value(pc.completed);
      w.key("p50_ns").value(pc.p50_ns);
      w.key("p95_ns").value(pc.p95_ns);
      w.key("p99_ns").value(pc.p99_ns);
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();
  if (engine != nullptr) {
    w.key("slo").begin_object();
    w.key("objectives").begin_array();
    for (const SloObjective& o : engine->config().objectives) {
      w.begin_object();
      w.key("name").value(o.name);
      w.key("kind").value(to_string(o.kind));
      if (o.kind == SloKind::kLatency) {
        w.key("class").value(serving::to_string(o.cls));
        w.key("latency_target_ns").value(o.latency_target_ns);
      }
      w.key("target_ratio").value(o.target_ratio);
      w.key("burn_threshold").value(o.burn_threshold);
      w.key("fast_window").value(static_cast<std::uint64_t>(o.fast_window));
      w.key("slow_window").value(static_cast<std::uint64_t>(o.slow_window));
      w.end_object();
    }
    w.end_array();
    w.key("alerts_fired").value(engine->alerts_fired());
    w.key("active").value(engine->any_active());
    w.key("events").begin_array();
    for (const HealthEvent& e : engine->events()) {
      w.begin_object();
      w.key("kind").value(to_string(e.kind));
      w.key("rule").value(e.rule);
      w.key("at_ns").value(e.at);
      w.key("interval").value(e.interval);
      w.key("value").value(e.value);
      w.key("threshold").value(e.threshold);
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_object();
  return w.str();
}

void write_timeseries_json(const std::string& path,
                           const TimeSeriesSampler& sampler,
                           const SloEngine* engine) {
  write_file(path, timeseries_json(sampler, engine));
}

std::string openmetrics_text(const telemetry::MetricsSnapshot& snapshot,
                             const std::vector<Exemplar>& exemplars) {
  std::ostringstream out;
  for (const telemetry::CounterSample& c : snapshot.counters) {
    const std::string name = sanitize(c.name);
    out << "# TYPE " << name << " counter\n";
    out << name << "_total " << c.value << '\n';
  }
  for (const telemetry::GaugeSample& g : snapshot.gauges) {
    const std::string name = sanitize(g.name);
    out << "# TYPE " << name << " gauge\n";
    out << name << ' ' << format_number(g.value) << '\n';
  }
  for (const telemetry::HistogramSample& h : snapshot.histograms) {
    const std::string name = sanitize(h.name);
    out << "# TYPE " << name << " histogram\n";
    // OpenMetrics buckets are cumulative; the registry's are disjoint.
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < h.bucket_counts.size(); ++i) {
      cumulative += h.bucket_counts[i];
      const bool overflow = i >= h.upper_bounds.size();
      out << name << "_bucket{le=\""
          << (overflow ? std::string("+Inf")
                       : format_number(h.upper_bounds[i]))
          << "\"} " << cumulative;
      // First exemplar landing in this bucket: smallest bound >= value.
      for (const Exemplar& ex : exemplars) {
        if (ex.metric != h.name || ex.trace_id == 0) continue;
        const bool above_prev =
            i == 0 || ex.value > h.upper_bounds[i - 1];
        const bool within = overflow || ex.value <= h.upper_bounds[i];
        if (above_prev && within) {
          out << " # {trace_id=\"" << ex.trace_id << "\"} "
              << format_number(ex.value) << ' ' << ex.timestamp_ns;
          break;
        }
      }
      out << '\n';
    }
    out << name << "_count " << h.count << '\n';
  }
  out << "# EOF\n";
  return out.str();
}

void write_openmetrics(const std::string& path,
                       const telemetry::MetricsSnapshot& snapshot,
                       const std::vector<Exemplar>& exemplars) {
  write_file(path, openmetrics_text(snapshot, exemplars));
}

}  // namespace memcim::monitor
