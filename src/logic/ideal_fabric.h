// Boolean-semantics fabric: exact IMP algebra with full cost
// accounting.  This is the backend the architecture model executes on —
// billions of operations per workload, so no device integration.
#pragma once

#include <vector>

#include "logic/fabric.h"

namespace memcim {

class IdealFabric final : public Fabric {
 public:
  explicit IdealFabric(const LogicCostModel& cost = {}) : Fabric(cost) {}

 protected:
  void do_set(Reg r, bool value) override { bits_[r] = value; }
  void do_imply(Reg p, Reg q) override { bits_[q] = !bits_[p] || bits_[q]; }
  [[nodiscard]] bool do_read(Reg r) const override { return bits_[r]; }
  void grow(std::size_t n) override {
    if (bits_.size() < n) bits_.resize(n, false);
  }

 private:
  std::vector<bool> bits_;
};

}  // namespace memcim
