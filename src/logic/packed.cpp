#include "logic/packed.h"

#include <algorithm>
#include <bit>

#include "common/error.h"
#include "common/parallel.h"
#include "telemetry/telemetry.h"

namespace memcim {

namespace {

struct PackedMetrics {
  telemetry::Counter& runs;
  telemetry::Counter& windows;
  telemetry::Counter& lane_blocks;
  telemetry::Counter& word_ops;
  telemetry::Counter& transitions;
  PackedMetrics()
      : runs(telemetry::Registry::global().counter("logic.packed.runs")),
        windows(telemetry::Registry::global().counter("logic.packed.windows")),
        lane_blocks(
            telemetry::Registry::global().counter("logic.packed.lane_blocks")),
        word_ops(
            telemetry::Registry::global().counter("logic.packed.word_ops")),
        transitions(telemetry::Registry::global().counter(
            "logic.packed.transitions")) {}
};

PackedMetrics& packed_metrics() {
  static PackedMetrics m;
  return m;
}

/// What one 64-lane block produces; reduced serially in block order.
struct BlockResult {
  std::vector<std::uint64_t> outputs;      ///< one lane word per result reg
  std::vector<std::uint64_t> transitions;  ///< per lane in the block
};

}  // namespace

PackedProgram compile_program(const CimProgram& program) {
  MEMCIM_CHECK_MSG(program.registers > 0, "program has no registers");
  MEMCIM_CHECK_MSG(program.inputs <= program.registers,
                   "program declares " << program.inputs << " inputs over "
                                       << program.registers << " registers");
  MEMCIM_CHECK_MSG(program.output < program.registers,
                   "program output register " << program.output
                                              << " out of range");
  PackedProgram compiled;
  compiled.registers = program.registers;
  compiled.inputs = program.inputs;
  compiled.output = program.output;
  compiled.outputs = result_registers(program);
  for (const Reg r : compiled.outputs)
    MEMCIM_CHECK_MSG(r < program.registers,
                     "program output register " << r << " out of range");
  compiled.instructions.reserve(program.instructions.size());
  for (const CimInstruction& inst : program.instructions) {
    MEMCIM_CHECK_MSG(inst.a < program.registers,
                     "instruction register a=" << inst.a << " out of range");
    switch (inst.op) {
      case CimOp::kSetFalse:
      case CimOp::kSetTrue:
        ++compiled.sets_per_window;
        break;
      case CimOp::kImply:
        MEMCIM_CHECK_MSG(inst.b < program.registers,
                         "instruction register b=" << inst.b
                                                   << " out of range");
        ++compiled.implies_per_window;
        break;
    }
    compiled.instructions.push_back(inst);
  }
  return compiled;
}

PackedFabric::PackedFabric(std::size_t registers, std::size_t lanes)
    : lanes_(lanes),
      lane_mask_(lanes >= kPackedLanes ? ~std::uint64_t{0}
                                       : (std::uint64_t{1} << lanes) - 1),
      words_(registers, 0) {
  MEMCIM_CHECK_MSG(registers > 0, "packed fabric needs >= 1 register");
  MEMCIM_CHECK_MSG(lanes >= 1 && lanes <= kPackedLanes,
                   "packed fabric lanes must be 1.." << kPackedLanes
                                                     << ", got " << lanes);
}

void PackedFabric::set_lanes(Reg r, std::uint64_t bits) {
  MEMCIM_CHECK(r < words_.size());
  bits &= lane_mask_;
  const std::uint64_t delta = words_[r] ^ bits;
  words_[r] = bits;
  count_transitions(delta);
}

void PackedFabric::set_all(Reg r, bool value) {
  MEMCIM_CHECK(r < words_.size());
  const std::uint64_t next = value ? lane_mask_ : 0;
  const std::uint64_t delta = words_[r] ^ next;
  words_[r] = next;
  count_transitions(delta);
}

void PackedFabric::imply(Reg p, Reg q) {
  MEMCIM_CHECK(p < words_.size());
  MEMCIM_CHECK(q < words_.size());
  const std::uint64_t next = (words_[q] | ~words_[p]) & lane_mask_;
  const std::uint64_t delta = words_[q] ^ next;
  words_[q] = next;
  count_transitions(delta);
}

std::uint64_t PackedFabric::read(Reg r) const {
  MEMCIM_CHECK(r < words_.size());
  return words_[r];
}

void PackedFabric::count_transitions(std::uint64_t delta) {
  transitions_total_ += static_cast<std::uint64_t>(std::popcount(delta));
  // Vertical ripple-carry add of the 64-lane increment mask: amortized
  // ~2 word ops per micro-op instead of up to 64 scalar increments.
  std::uint64_t carry = delta;
  for (std::size_t p = 0; carry != 0; ++p) {
    if (p == planes_.size()) planes_.push_back(0);
    const std::uint64_t old = planes_[p];
    planes_[p] = old ^ carry;
    carry &= old;
  }
}

std::vector<std::uint64_t> PackedFabric::transitions_per_lane() const {
  std::vector<std::uint64_t> out(lanes_, 0);
  for (std::size_t p = 0; p < planes_.size(); ++p)
    for (std::size_t w = 0; w < lanes_; ++w)
      out[w] |= ((planes_[p] >> w) & 1u) << p;
  return out;
}

PackedRunResult run_program_packed(
    const PackedProgram& compiled,
    const std::vector<std::vector<bool>>& input_sets,
    const PackedRunOptions& options) {
  MEMCIM_CHECK_MSG(!input_sets.empty(),
                   "packed run needs at least one window");
  const std::size_t windows = input_sets.size();
  for (const std::vector<bool>& inputs : input_sets)
    MEMCIM_CHECK_MSG(inputs.size() == compiled.inputs,
                     "program expects " << compiled.inputs << " inputs, got "
                                        << inputs.size());

  const std::size_t blocks = packed_lane_blocks(windows);
  const std::size_t n_out = compiled.outputs.empty()
                                ? std::size_t{1}
                                : compiled.outputs.size();
  std::vector<BlockResult> per_block(blocks);

  const std::size_t grain = std::max<std::size_t>(1, options.block_grain);
  parallel_for_chunks(0, blocks, grain, [&](std::size_t b0, std::size_t b1) {
    for (std::size_t b = b0; b < b1; ++b) {
      const std::size_t base = b * kPackedLanes;
      const std::size_t lanes = std::min(kPackedLanes, windows - base);
      PackedFabric fabric(compiled.registers, lanes);
      // Input load: the scalar path issues one fabric.set per input per
      // window; packed, that is one lane-word write per input register.
      for (std::size_t i = 0; i < compiled.inputs; ++i) {
        std::uint64_t bits = 0;
        for (std::size_t w = 0; w < lanes; ++w)
          if (input_sets[base + w][i]) bits |= std::uint64_t{1} << w;
        fabric.set_lanes(i, bits);
      }
      for (const CimInstruction& inst : compiled.instructions) {
        switch (inst.op) {
          case CimOp::kSetFalse:
            fabric.set_all(inst.a, false);
            break;
          case CimOp::kSetTrue:
            fabric.set_all(inst.a, true);
            break;
          case CimOp::kImply:
            fabric.imply(inst.a, inst.b);
            break;
        }
      }
      per_block[b].outputs.reserve(n_out);
      if (compiled.outputs.empty()) {
        per_block[b].outputs.push_back(fabric.read(compiled.output));
      } else {
        for (const Reg r : compiled.outputs)
          per_block[b].outputs.push_back(fabric.read(r));
      }
      per_block[b].transitions = fabric.transitions_per_lane();
    }
  });

  // Serial reduction in block order: per-window payloads concatenate
  // deterministically regardless of which worker ran which block.
  PackedRunResult result;
  result.outputs.reserve(windows);
  result.wide.reserve(windows);
  result.transitions.reserve(windows);
  std::uint64_t transitions_total = 0;
  for (std::size_t b = 0; b < blocks; ++b) {
    const std::size_t base = b * kPackedLanes;
    const std::size_t lanes = std::min(kPackedLanes, windows - base);
    for (std::size_t w = 0; w < lanes; ++w) {
      result.outputs.push_back(((per_block[b].outputs[0] >> w) & 1u) != 0);
      std::vector<bool> bits;
      bits.reserve(n_out);
      for (std::size_t o = 0; o < n_out; ++o)
        bits.push_back(((per_block[b].outputs[o] >> w) & 1u) != 0);
      result.wide.push_back(std::move(bits));
      result.transitions.push_back(per_block[b].transitions[w]);
      transitions_total += per_block[b].transitions[w];
    }
  }

  // Cost books, reconciled to what a scalar run_program_simd would have
  // accrued for the same program on a cost-model backend with these
  // step quanta (every window executes the identical stream, so totals
  // are exact multiples of the per-window counts).
  const std::uint64_t w64 = static_cast<std::uint64_t>(windows);
  const std::uint64_t sets_pw =
      static_cast<std::uint64_t>(compiled.inputs) + compiled.sets_per_window;
  const std::uint64_t writes_pw = sets_pw + compiled.implies_per_window;
  const std::uint64_t steps_pw = sets_pw * options.set_step_cost +
                                 compiled.implies_per_window *
                                     options.imply_step_cost;
  result.steps_per_window = steps_pw;
  result.writes = w64 * writes_pw;
  result.latency = options.cost.t_step * static_cast<double>(steps_pw);
  result.energy = options.cost.e_write * static_cast<double>(result.writes);

  if (telemetry::enabled()) {
    detail::FabricMetrics& fm = detail::fabric_metrics();
    fm.sets.add(w64 * sets_pw);
    fm.implies.add(w64 * compiled.implies_per_window);
    fm.reads.add(w64 * static_cast<std::uint64_t>(n_out));
    fm.steps.add(w64 * steps_pw);
    fm.writes.add(result.writes);
    telemetry::Registry::global().counter("program.runs").add(w64);
    telemetry::Registry::global()
        .counter("program.instructions")
        .add(w64 * compiled.length());
    telemetry::Registry::global()
        .counter("program.imply_steps")
        .add(w64 * compiled.implies_per_window);
    telemetry::Registry::global().counter("program.simd_windows").add(w64);
    PackedMetrics& pm = packed_metrics();
    pm.runs.add(1);
    pm.windows.add(w64);
    pm.lane_blocks.add(blocks);
    // One word op per input load, per instruction, and per output read
    // in every block.
    pm.word_ops.add(static_cast<std::uint64_t>(blocks) *
                    (static_cast<std::uint64_t>(compiled.inputs) +
                     compiled.length() + n_out));
    pm.transitions.add(transitions_total);
  }
  return result;
}

PackedRunResult run_program_packed(
    const CimProgram& program,
    const std::vector<std::vector<bool>>& input_sets,
    const PackedRunOptions& options) {
  return run_program_packed(compile_program(program), input_sets, options);
}

}  // namespace memcim
