// Bit-sliced (SIMD-within-a-register) microcode execution engine.
//
// `run_program_simd` replays a CimProgram window-by-window through the
// virtual Fabric interface: one do_set/do_imply dispatch per
// instruction *per window*.  That serializes exactly the parallelism
// the paper's architecture provides for free — Section III.B budgets
// 10^6 concurrent operations, and the array executes one instruction
// across every row at once.
//
// This engine recovers that execution model in the simulator.  A
// PackedFabric lays out W <= 64 independent register windows as ONE
// u64 per register (struct-of-arrays: bit w of word r is window w's
// register r), so each instruction executes for all windows with a
// handful of bitwise ops:
//
//   kSetFalse  word[r]  = 0            (masked to the active lanes)
//   kSetTrue   word[r] |= lane_mask
//   kImply     word[q] |= ~word[p]     (q <- p IMP q, all lanes)
//
// Cost books are reconciled exactly, not approximately: the packed
// runner books the same fabric.* / program.* telemetry tallies, the
// same SimdRunResult latency/energy/writes, and — via popcount deltas
// folded into per-lane vertical (bit-plane) counters — the same
// per-window register-transition counts the scalar replay would have
// produced.  Differential tests in tests/logic/packed_program_test.cpp
// hold the two paths bit-identical.
//
// The engine models the *cost-model* fabrics only (boolean semantics
// with configurable step quanta, mirroring IdealFabric and the
// CrsFabric 2-step IMP).  Fault hooks and device-accurate runs stay on
// the scalar path — see docs/LOGIC.md for the fallback rules.
#pragma once

#include <cstdint>
#include <vector>

#include "logic/fabric.h"
#include "logic/program.h"

namespace memcim {

/// Windows per machine word: one bit lane each.
inline constexpr std::size_t kPackedLanes = 64;

/// Whole 64-lane blocks needed to pack `windows` independent register
/// windows (zero for zero windows).  The packed engines size their
/// block loops with this; the serving coalescer caps batches at
/// kPackedLanes so every dispatched batch is exactly one lane block.
[[nodiscard]] constexpr std::size_t packed_lane_blocks(std::size_t windows) {
  return (windows + kPackedLanes - 1) / kPackedLanes;
}

/// A validated, cost-annotated program ready for packed replay.
/// Compiling once hoists the per-instruction bounds checks and the
/// per-window step/write totals out of the execution loop.
struct PackedProgram {
  std::vector<CimInstruction> instructions;
  std::size_t registers = 0;
  std::size_t inputs = 0;
  Reg output = 0;
  std::vector<Reg> outputs;              ///< resolved result registers (≥1)
  std::uint64_t sets_per_window = 0;     ///< kSet* instructions (excl. input loads)
  std::uint64_t implies_per_window = 0;  ///< kImply instructions

  [[nodiscard]] std::size_t length() const { return instructions.size(); }
};

/// Validate `program` (register bounds, arity) and annotate it with the
/// per-window cost totals.  Throws Error on a malformed program.
[[nodiscard]] PackedProgram compile_program(const CimProgram& program);

/// Execution options: the cost quanta of the scalar backend being
/// mirrored.  Defaults model IdealFabric; set imply_step_cost = 2 to
/// mirror CrsFabric's init+operate IMP.
struct PackedRunOptions {
  LogicCostModel cost{};
  std::uint64_t set_step_cost = 1;
  std::uint64_t imply_step_cost = 1;
  /// Lane blocks per thread-pool task.  Short programs amortize task
  /// dispatch over several blocks; long programs keep grain 1 for load
  /// balance.  The compiler's window-packing pass picks this — see
  /// packing_block_grain() in isa/passes.h.  0 is treated as 1.
  std::size_t block_grain = 1;
};

/// W <= 64 register windows packed one bit-lane per window.
class PackedFabric {
 public:
  /// A fabric of `registers` registers across `lanes` active windows
  /// (1..64).  All registers start at logic 0, like Fabric::alloc.
  PackedFabric(std::size_t registers, std::size_t lanes);

  [[nodiscard]] std::size_t registers() const { return words_.size(); }
  [[nodiscard]] std::size_t lanes() const { return lanes_; }
  /// Bit mask of the active lanes (low `lanes()` bits set).
  [[nodiscard]] std::uint64_t lane_mask() const { return lane_mask_; }

  /// Per-lane write of register r (the input-load micro-op: one set per
  /// lane in the scalar path, with per-window values).
  void set_lanes(Reg r, std::uint64_t bits);
  /// Broadcast write of register r (a compiled kSetTrue/kSetFalse).
  void set_all(Reg r, bool value);
  /// q <- p IMP q across all lanes.
  void imply(Reg p, Reg q);
  /// Sense register r: bit w is window w's value.
  [[nodiscard]] std::uint64_t read(Reg r) const;

  // -- transition book ------------------------------------------------------
  /// Register-value changes per lane since construction, recovered from
  /// the vertical popcount planes.
  [[nodiscard]] std::vector<std::uint64_t> transitions_per_lane() const;
  /// Total register-value changes across all lanes.
  [[nodiscard]] std::uint64_t transitions_total() const {
    return transitions_total_;
  }

 private:
  /// Fold one micro-op's flip mask into the vertical counters.
  void count_transitions(std::uint64_t delta);

  std::size_t lanes_;
  std::uint64_t lane_mask_;
  std::vector<std::uint64_t> words_;
  /// Vertical (bit-plane) per-lane transition counters: plane p holds
  /// bit p of every lane's count, so adding a 64-lane flip mask is a
  /// ripple-carry over O(log ops) words instead of 64 increments.
  std::vector<std::uint64_t> planes_;
  std::uint64_t transitions_total_ = 0;
};

/// Result of a packed SIMD replay: everything SimdRunResult reports,
/// plus the recovered per-window transition counts and the per-window
/// step count (handy for latency cross-checks).
struct PackedRunResult {
  std::vector<bool> outputs;                 ///< one per window (first result)
  std::vector<std::vector<bool>> wide;       ///< [window][result register]
  std::vector<std::uint64_t> transitions;    ///< register flips per window
  Time latency{0.0};                         ///< one program pass
  Energy energy{0.0};                        ///< summed over all windows
  std::uint64_t writes = 0;
  std::uint64_t steps_per_window = 0;
};

/// Packed replay of `compiled` across `input_sets.size()` windows,
/// chunked into 64-lane blocks over the thread pool.  Bitwise
/// equivalent to run_program_simd on a scalar cost-model backend with
/// the same step quanta: identical outputs, latency, energy, writes,
/// and fabric.* / program.* telemetry tallies.
[[nodiscard]] PackedRunResult run_program_packed(
    const PackedProgram& compiled,
    const std::vector<std::vector<bool>>& input_sets,
    const PackedRunOptions& options = {});

/// Convenience: compile + run in one call.
[[nodiscard]] PackedRunResult run_program_packed(
    const CimProgram& program,
    const std::vector<std::vector<bool>>& input_sets,
    const PackedRunOptions& options = {});

}  // namespace memcim
