// Compiled fast path for the CRS TC-adder farm.
//
// `CrsTcAdder::add` walks the 4N+5 pulse schedule one `apply_pulse` at
// a time — a branchy threshold-ladder state machine per pulse.  For the
// fault-free farm that schedule is fully determined by the operands and
// the resident cell states, so it compiles to closed form per slot:
//
//   sum      = (a + b) mod 2^N
//   c_out    = bit N of a + b
//   S        = popcount((a+b) ^ a ^ b)        carries generated, c_1..c_N
//   t_carry  = stale + c_in + 2S − 3·c_out + 2   carry-cell transitions
//   t_sum_i  = s_old_i + s_new_i                 init-to-0 + parity SET
//   pulses   = 4N + 5 always (the schedule is constant-time)
//
// (`stale` is 1 iff the carry cell still holds the previous add's
// carry-out ≠ c_in; the scratch cell never transitions.  The formulas
// hold for every valid CrsCellParams: write amplitudes ±1.1·threshold
// always clear both thresholds, negative pulses cannot move a '0' cell,
// and the majority pulse SETs exactly when ≥ 2 inputs are 1.)
//
// Energy is the delicate part: each CrsCell accrues `energy_ +=
// e_per_switch` per transition — repeated-quantum double accumulation —
// and `TcAdderResult::energy` is an ordered fold over the farm slot's
// cells.  PackedTcAdderFarm keeps per-(slot, cell) cumulative
// transition counts and replays the fold through a QuantumSumTable, so
// every per-op energy double is bit-identical to the scalar path's.
//
// The farm processes slots in lane blocks of kPackedLanes, chunked over
// the thread pool; per-op payloads land in op-indexed arrays, so the
// caller's serial op-order reduction sees exactly what the scalar farm
// would have produced.  Fault hooks are NOT supported here — armed
// farms stay on the scalar path (docs/LOGIC.md, fallback rules).
#pragma once

#include <cstdint>
#include <vector>

#include "device/crs.h"
#include "logic/packed.h"

namespace memcim {

/// Per-run payload, op-indexed; `energies[k]` is bitwise what
/// `CrsTcAdder::add` would have reported for op k.
struct PackedAddOutcome {
  std::vector<std::uint64_t> sums;
  std::vector<double> energies;
  std::uint64_t transitions = 0;   ///< total cell transitions, all ops
  std::uint64_t lane_blocks = 0;   ///< 64-slot blocks processed
};

class PackedTcAdderFarm {
 public:
  /// A farm of `slots` independent N-bit adders, all cells starting at
  /// '0' like a fresh CrsTcAdder farm.
  PackedTcAdderFarm(std::size_t slots, std::size_t width,
                    const CrsCellParams& cell);

  [[nodiscard]] std::size_t slots() const { return slots_; }
  [[nodiscard]] std::size_t width() const { return width_; }

  /// Run `a.size()` additions with the scalar farm's batch structure
  /// (op k on slot k % slots, ops on a slot in ascending k).  Lane
  /// blocks run concurrently on the thread pool; `chunk_grain` is the
  /// caller's per-op grain, converted to whole lane blocks.  Cell
  /// states and energy books persist across calls, like the reused
  /// scalar farm.
  [[nodiscard]] PackedAddOutcome run(const std::vector<std::uint64_t>& a,
                                     const std::vector<std::uint64_t>& b,
                                     std::size_t chunk_grain);

  /// The sum latched in a slot's cells (mirrors CrsTcAdder::stored_sum).
  [[nodiscard]] std::uint64_t stored_sum(std::size_t slot) const;

 private:
  std::size_t slots_;
  std::size_t width_;
  CrsCellParams cell_;
  std::uint64_t sum_mask_;
  // Per-slot resident state and exact cumulative books.
  std::vector<std::uint64_t> stored_sum_;
  std::vector<std::uint8_t> carry_state_;
  std::vector<std::uint64_t> cum_carry_;  ///< carry-cell transitions
  std::vector<std::uint64_t> cum_sum_;    ///< [slot*width + i] sum-cell i
  std::vector<double> e_prev_;            ///< last ordered energy fold
};

}  // namespace memcim
