#include "logic/comparator.h"

#include "common/error.h"
#include "logic/gates.h"

namespace memcim {

ComparatorCost comparator_cost() { return {}; }

Reg paper_comparator(Fabric& f, Reg a1, Reg a0, Reg b1, Reg b0) {
  const Reg x1 = gate_xor(f, a1, b1);
  const Reg x0 = gate_xor(f, a0, b0);
  return gate_nand(f, x1, x0);
}

Reg equality_comparator(Fabric& f, Reg a1, Reg a0, Reg b1, Reg b0) {
  const Reg x1 = gate_xor(f, a1, b1);
  const Reg x0 = gate_xor(f, a0, b0);
  return gate_nor(f, x1, x0);
}

Reg word_equality(Fabric& f, std::span<const Reg> a, std::span<const Reg> b) {
  MEMCIM_CHECK_MSG(a.size() == b.size() && !a.empty(),
                   "word_equality needs equal non-empty operands");
  Reg acc = gate_xnor(f, a[0], b[0]);
  for (std::size_t i = 1; i < a.size(); ++i) {
    const Reg eq_i = gate_xnor(f, a[i], b[i]);
    acc = gate_and(f, acc, eq_i);
  }
  return acc;
}

std::vector<Reg> load_word(Fabric& f, const std::vector<bool>& bits) {
  std::vector<Reg> regs;
  regs.reserve(bits.size());
  for (bool bit : bits) {
    const Reg r = f.alloc();
    f.set(r, bit);
    regs.push_back(r);
  }
  return regs;
}

}  // namespace memcim
