// Crossbar-mapped look-up tables — Section IV.C(b): "Resistive memories
// can be either used to implement small LUTs for FPGAs (as suggested in
// [83]) or LUTs can be mapped to large-scale crossbar arrays [88, 89]
// to reduce the crossbar array overhead."
//
// A k-input boolean function is stored as 2^k CRS cells (one per input
// minterm); evaluation decodes the input vector to a row address and
// reads the stored cell — one read pulse (plus write-back when the
// stored bit was '0').  Multi-output LUTs share the decode.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "crossbar/crs_memory.h"

namespace memcim {

/// A k-input, m-output LUT stored in a CRS memory bank.
class CrsLut {
 public:
  /// Builds the bank: 2^inputs rows × outputs columns.
  CrsLut(std::size_t inputs, std::size_t outputs,
         const CrsCellParams& cell_params);

  [[nodiscard]] std::size_t inputs() const { return inputs_; }
  [[nodiscard]] std::size_t outputs() const { return outputs_; }

  /// Program output column `out` from a truth table evaluated over all
  /// 2^inputs minterm indices (bit i of the index = input i).
  void program(std::size_t out,
               const std::function<bool(std::uint64_t)>& truth);

  /// Program every output from a vector-valued truth function.
  void program_all(
      const std::function<std::vector<bool>(std::uint64_t)>& truth);

  /// Evaluate the LUT: decode + read (write-back accounted by the bank).
  [[nodiscard]] std::vector<bool> evaluate(std::uint64_t input_bits);

  /// Single-output convenience.
  [[nodiscard]] bool evaluate_single(std::uint64_t input_bits);

  /// The backing store (pulse/energy books live there).
  [[nodiscard]] const CrsMemory& memory() const { return memory_; }

 private:
  std::size_t inputs_;
  std::size_t outputs_;
  CrsMemory memory_;
};

/// Map an arbitrary N-bit → M-bit function onto a bank of LUTs with at
/// most `max_inputs` each, Shannon-decomposing on the extra variables.
/// Returns the total number of CRS cells consumed — the crossbar-area
/// figure the paper's refs [88, 89] optimize.
[[nodiscard]] std::size_t lut_cells_for_function(std::size_t inputs,
                                                 std::size_t outputs,
                                                 std::size_t max_inputs);

}  // namespace memcim
