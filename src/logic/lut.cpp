#include "logic/lut.h"

#include "common/error.h"

namespace memcim {

CrsLut::CrsLut(std::size_t inputs, std::size_t outputs,
               const CrsCellParams& cell_params)
    : inputs_(inputs),
      outputs_(outputs),
      memory_(std::size_t{1} << inputs, outputs, cell_params) {
  MEMCIM_CHECK_MSG(inputs >= 1 && inputs <= 20,
                   "LUT inputs must be 1..20 (2^k rows are materialized)");
  MEMCIM_CHECK(outputs >= 1);
}

void CrsLut::program(std::size_t out,
                     const std::function<bool(std::uint64_t)>& truth) {
  MEMCIM_CHECK(out < outputs_ && truth != nullptr);
  const std::uint64_t rows = std::uint64_t{1} << inputs_;
  for (std::uint64_t minterm = 0; minterm < rows; ++minterm)
    memory_.write(static_cast<std::size_t>(minterm), out, truth(minterm));
}

void CrsLut::program_all(
    const std::function<std::vector<bool>(std::uint64_t)>& truth) {
  MEMCIM_CHECK(truth != nullptr);
  const std::uint64_t rows = std::uint64_t{1} << inputs_;
  for (std::uint64_t minterm = 0; minterm < rows; ++minterm) {
    const std::vector<bool> row = truth(minterm);
    MEMCIM_CHECK_MSG(row.size() == outputs_, "truth row width mismatch");
    for (std::size_t out = 0; out < outputs_; ++out)
      memory_.write(static_cast<std::size_t>(minterm), out, row[out]);
  }
}

std::vector<bool> CrsLut::evaluate(std::uint64_t input_bits) {
  MEMCIM_CHECK_MSG(input_bits < (std::uint64_t{1} << inputs_),
                   "input exceeds the LUT's domain");
  std::vector<bool> out(outputs_);
  for (std::size_t o = 0; o < outputs_; ++o)
    out[o] = memory_.read(static_cast<std::size_t>(input_bits), o);
  return out;
}

bool CrsLut::evaluate_single(std::uint64_t input_bits) {
  MEMCIM_CHECK(outputs_ == 1);
  return evaluate(input_bits)[0];
}

std::size_t lut_cells_for_function(std::size_t inputs, std::size_t outputs,
                                   std::size_t max_inputs) {
  MEMCIM_CHECK(inputs >= 1 && outputs >= 1 && max_inputs >= 1);
  if (inputs <= max_inputs) return (std::size_t{1} << inputs) * outputs;
  // Shannon decomposition on one variable: two cofactor networks plus a
  // 2:1 mux per output (a 3-input LUT = 8 cells).
  const std::size_t cofactors =
      2 * lut_cells_for_function(inputs - 1, outputs, max_inputs);
  const std::size_t mux = outputs * 8;
  return cofactors + mux;
}

}  // namespace memcim
