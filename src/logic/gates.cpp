#include "logic/gates.h"

namespace memcim {

Reg gate_not(Fabric& f, Reg a) {
  const Reg r = f.alloc();
  f.set(r, false);
  f.imply(a, r);  // r = ¬a ∨ 0
  return r;
}

Reg gate_copy(Fabric& f, Reg a) {
  const Reg w = gate_not(f, a);
  return gate_not(f, w);
}

Reg gate_nand(Fabric& f, Reg a, Reg b) {
  const Reg s = f.alloc();
  f.set(s, false);
  f.imply(a, s);  // s = ¬a
  f.imply(b, s);  // s = ¬b ∨ ¬a
  return s;
}

Reg gate_and(Fabric& f, Reg a, Reg b) {
  const Reg s = gate_nand(f, a, b);
  return gate_not(f, s);
}

Reg gate_or(Fabric& f, Reg a, Reg b) {
  const Reg w = gate_not(f, a);   // w = ¬a
  const Reg r = gate_copy(f, b);  // r = b
  f.imply(w, r);                  // r = a ∨ b
  return r;
}

Reg gate_nor(Fabric& f, Reg a, Reg b) {
  const Reg w = gate_not(f, a);
  const Reg x = gate_not(f, b);
  const Reg s = gate_nand(f, w, x);  // s = a ∨ b
  return gate_not(f, s);
}

Reg gate_xor_destructive(Fabric& f, Reg a, Reg b) {
  const Reg w1 = f.alloc();
  const Reg w2 = f.alloc();
  const Reg w3 = f.alloc();
  f.set(w1, false);
  f.imply(a, w1);    // w1 = ¬a
  f.set(w2, false);
  f.imply(b, w2);    // w2 = ¬b
  f.imply(w1, w2);   // w2 = a ∨ ¬b
  f.set(w3, false);
  f.imply(w2, w3);   // w3 = ¬a ∧ b
  f.imply(a, b);     // b  = ¬a ∨ b   (input b consumed)
  f.imply(b, w3);    // w3 = (a ∧ ¬b) ∨ (¬a ∧ b)
  return w3;
}

Reg gate_xor(Fabric& f, Reg a, Reg b) {
  const Reg b_copy = gate_copy(f, b);
  return gate_xor_destructive(f, a, b_copy);
}

Reg gate_xnor(Fabric& f, Reg a, Reg b) {
  const Reg x = gate_xor(f, a, b);
  return gate_not(f, x);
}

GateCost cost_not() { return {2, 1}; }
GateCost cost_copy() { return {4, 2}; }
GateCost cost_nand() { return {3, 1}; }
GateCost cost_and() { return {5, 2}; }
GateCost cost_or() { return {7, 3}; }
GateCost cost_nor() { return {9, 4}; }
GateCost cost_xor_destructive() { return {9, 3}; }
GateCost cost_xor() { return {13, 5}; }
GateCost cost_xnor() { return {15, 6}; }

}  // namespace memcim
