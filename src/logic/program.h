// CIM microcode: record → replay stateful-logic programs.
//
// The paper's architecture drives the crossbar from a CMOS controller
// ("the communication and control from/to the crossbar can be realized
// using CMOS technology", Section III.A).  That controller does not
// re-derive gate sequences per operation — it replays *microcode*.
// This module provides exactly that:
//
//   * `RecordingFabric` captures the set/imply stream a gate-library
//     computation emits, producing a `CimProgram`,
//   * `run_program` replays a program on any backend fabric,
//   * `run_program_simd` replays it across W independent register
//     windows ("rows"): one program's latency, W× the writes — the
//     massive-parallelism execution model of the CIM array.
#pragma once

#include <cstdint>
#include <vector>

#include "logic/fabric.h"

namespace memcim {

enum class CimOp : std::uint8_t {
  kSetFalse,  ///< reg[a] ← 0
  kSetTrue,   ///< reg[a] ← 1
  kImply,     ///< reg[b] ← reg[a] IMP reg[b]
};

struct CimInstruction {
  CimOp op = CimOp::kSetFalse;
  Reg a = 0;
  Reg b = 0;
};

/// A recorded stateful-logic program over a window of `registers`
/// registers; `inputs` leading registers are the operands, `output` is
/// where the result lands.
struct CimProgram {
  std::vector<CimInstruction> instructions;
  std::size_t registers = 0;
  std::size_t inputs = 0;
  Reg output = 0;

  [[nodiscard]] std::size_t length() const { return instructions.size(); }
};

/// A Fabric that executes nothing physical — it records the microcode.
class RecordingFabric final : public Fabric {
 public:
  RecordingFabric() = default;

  /// The instruction stream captured so far.
  [[nodiscard]] const std::vector<CimInstruction>& recording() const {
    return recording_;
  }

 protected:
  void do_set(Reg r, bool value) override {
    recording_.push_back({value ? CimOp::kSetTrue : CimOp::kSetFalse, r, 0});
    bits_[r] = value;
  }
  void do_imply(Reg p, Reg q) override {
    recording_.push_back({CimOp::kImply, p, q});
    bits_[q] = !bits_[p] || bits_[q];
  }
  [[nodiscard]] bool do_read(Reg r) const override { return bits_[r]; }
  void grow(std::size_t n) override {
    if (bits_.size() < n) bits_.resize(n, false);
  }

 private:
  std::vector<CimInstruction> recording_;
  std::vector<bool> bits_;
};

/// Record a computation into a program.  `body` receives the fabric and
/// the pre-allocated input registers and returns the output register.
template <typename Body>
[[nodiscard]] CimProgram record_program(std::size_t inputs, Body&& body) {
  RecordingFabric recorder;
  std::vector<Reg> in_regs;
  in_regs.reserve(inputs);
  for (std::size_t i = 0; i < inputs; ++i) in_regs.push_back(recorder.alloc());
  const Reg out = body(recorder, in_regs);
  CimProgram program;
  program.instructions = recorder.recording();
  program.registers = recorder.size();
  program.inputs = inputs;
  program.output = out;
  return program;
}

/// Replay a program on `fabric` with the given operand bits; registers
/// are allocated at a fresh window.  Returns the output bit.
[[nodiscard]] bool run_program(const CimProgram& program, Fabric& fabric,
                               const std::vector<bool>& inputs);

struct SimdRunResult {
  std::vector<bool> outputs;  ///< one per window
  Time latency{0.0};          ///< one program pass (windows concurrent)
  Energy energy{0.0};         ///< summed over all windows
  std::uint64_t writes = 0;
};

/// Replay a program across `input_sets.size()` independent register
/// windows of the same fabric — rows of the crossbar executing the
/// same microcode in lock-step.
[[nodiscard]] SimdRunResult run_program_simd(
    const CimProgram& program, Fabric& fabric,
    const std::vector<std::vector<bool>>& input_sets);

}  // namespace memcim
