// CIM microcode: record → replay stateful-logic programs.
//
// The paper's architecture drives the crossbar from a CMOS controller
// ("the communication and control from/to the crossbar can be realized
// using CMOS technology", Section III.A).  That controller does not
// re-derive gate sequences per operation — it replays *microcode*.
// This module provides exactly that:
//
//   * `RecordingFabric` captures the set/imply stream a gate-library
//     computation emits, producing a `CimProgram`,
//   * `run_program` replays a program on any backend fabric,
//   * `run_program_simd` replays it across W independent register
//     windows ("rows"): one program's latency, W× the writes — the
//     massive-parallelism execution model of the CIM array.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "logic/fabric.h"

namespace memcim {

enum class CimOp : std::uint8_t {
  kSetFalse,  ///< reg[a] ← 0
  kSetTrue,   ///< reg[a] ← 1
  kImply,     ///< reg[b] ← reg[a] IMP reg[b]
};

struct CimInstruction {
  CimOp op = CimOp::kSetFalse;
  Reg a = 0;
  Reg b = 0;
};

/// A recorded stateful-logic program over a window of `registers`
/// registers; `inputs` leading registers are the operands, `output` is
/// where the result lands.  Multi-bit results (adders, word kernels)
/// list every result register in `outputs`; when `outputs` is empty the
/// program has the single legacy result `output`.
struct CimProgram {
  std::vector<CimInstruction> instructions;
  std::size_t registers = 0;
  std::size_t inputs = 0;
  Reg output = 0;
  std::vector<Reg> outputs;  ///< empty ⇒ single result at `output`

  [[nodiscard]] std::size_t length() const { return instructions.size(); }
};

/// The program's result registers: `outputs` when declared, else the
/// single legacy `output`.  Never empty.
[[nodiscard]] std::vector<Reg> result_registers(const CimProgram& program);

/// A Fabric that executes nothing physical — it records the microcode.
class RecordingFabric final : public Fabric {
 public:
  RecordingFabric() = default;

  /// Reserve storage up front for a recording of known shape.  Repeated
  /// `grow()` / `push_back` on large recordings reallocates both the
  /// register image and the instruction stream; callers that know the
  /// program shape (re-recording a cached kernel, property tests with a
  /// fixed length) pass it here and record allocation-free.
  RecordingFabric(std::size_t expected_registers,
                  std::size_t expected_instructions) {
    bits_.reserve(expected_registers);
    recording_.reserve(expected_instructions);
  }

  /// The instruction stream captured so far.
  [[nodiscard]] const std::vector<CimInstruction>& recording() const {
    return recording_;
  }

 protected:
  void do_set(Reg r, bool value) override {
    recording_.push_back({value ? CimOp::kSetTrue : CimOp::kSetFalse, r, 0});
    bits_[r] = value;
  }
  void do_imply(Reg p, Reg q) override {
    recording_.push_back({CimOp::kImply, p, q});
    bits_[q] = !bits_[p] || bits_[q];
  }
  [[nodiscard]] bool do_read(Reg r) const override { return bits_[r]; }
  void grow(std::size_t n) override {
    if (bits_.size() < n) {
      // Geometric reservation: vector<bool>::resize alone reallocates
      // per register on the alloc-one-at-a-time recording pattern.
      if (bits_.capacity() < n) bits_.reserve(std::max(n, bits_.size() * 2));
      bits_.resize(n, false);
    }
  }

 private:
  std::vector<CimInstruction> recording_;
  std::vector<bool> bits_;
};

/// Record a computation into a program.  `body` receives the fabric and
/// the pre-allocated input registers and returns the output register.
/// The optional shape hints pre-reserve the recorder's storage (see
/// RecordingFabric's reserving constructor).
template <typename Body>
[[nodiscard]] CimProgram record_program(std::size_t inputs, Body&& body,
                                        std::size_t expected_registers = 0,
                                        std::size_t expected_instructions = 0) {
  RecordingFabric recorder(expected_registers, expected_instructions);
  std::vector<Reg> in_regs;
  in_regs.reserve(inputs);
  for (std::size_t i = 0; i < inputs; ++i) in_regs.push_back(recorder.alloc());
  const Reg out = body(recorder, in_regs);
  CimProgram program;
  program.instructions = recorder.recording();
  program.registers = recorder.size();
  program.inputs = inputs;
  program.output = out;
  return program;
}

/// Record a computation with a multi-bit result.  `body` returns the
/// result registers in order (e.g. sum LSB..MSB then carry).
template <typename Body>
[[nodiscard]] CimProgram record_program_multi(
    std::size_t inputs, Body&& body, std::size_t expected_registers = 0,
    std::size_t expected_instructions = 0) {
  RecordingFabric recorder(expected_registers, expected_instructions);
  std::vector<Reg> in_regs;
  in_regs.reserve(inputs);
  for (std::size_t i = 0; i < inputs; ++i) in_regs.push_back(recorder.alloc());
  std::vector<Reg> outs = body(recorder, in_regs);
  CimProgram program;
  program.instructions = recorder.recording();
  program.registers = recorder.size();
  program.inputs = inputs;
  program.output = outs.empty() ? Reg{0} : outs.front();
  program.outputs = std::move(outs);
  return program;
}

/// Allocate a fresh contiguous `registers`-wide window on `fabric` and
/// return its base register.
[[nodiscard]] Reg allocate_program_window(Fabric& fabric,
                                          std::size_t registers);

/// The shared IR replay core: load `inputs` into the window at `base`,
/// then execute the first `length` instructions.  Books NO program.*
/// telemetry (fabric.* accrues as usual through the Fabric calls) — the
/// run_program* wrappers layer telemetry on top, and fault goldens /
/// the compiler's reference interpreter replay prefixes through this
/// same switch so the two can never drift.  Returns the number of
/// kImply pulses executed.
std::uint64_t replay_program_window(const CimProgram& program, Fabric& fabric,
                                    Reg base, const std::vector<bool>& inputs,
                                    std::size_t length);

/// Full-length convenience overload.
std::uint64_t replay_program_window(const CimProgram& program, Fabric& fabric,
                                    Reg base, const std::vector<bool>& inputs);

/// Replay a program on `fabric` with the given operand bits; registers
/// are allocated at a fresh window.  Returns the output bit.
[[nodiscard]] bool run_program(const CimProgram& program, Fabric& fabric,
                               const std::vector<bool>& inputs);

/// Replay a program and read every result register (see
/// `result_registers`).  Multi-output analogue of `run_program`.
[[nodiscard]] std::vector<bool> run_program_wide(
    const CimProgram& program, Fabric& fabric,
    const std::vector<bool>& inputs);

struct SimdRunResult {
  std::vector<bool> outputs;  ///< one per window
  Time latency{0.0};          ///< one program pass (windows concurrent)
  Energy energy{0.0};         ///< summed over all windows
  std::uint64_t writes = 0;
};

/// Replay a program across `input_sets.size()` independent register
/// windows of the same fabric — rows of the crossbar executing the
/// same microcode in lock-step.
[[nodiscard]] SimdRunResult run_program_simd(
    const CimProgram& program, Fabric& fabric,
    const std::vector<std::vector<bool>>& input_sets);

struct SimdWideResult {
  std::vector<std::vector<bool>> outputs;  ///< [window][result register]
  Time latency{0.0};                       ///< one program pass
  Energy energy{0.0};                      ///< summed over all windows
  std::uint64_t writes = 0;
};

/// Multi-output analogue of `run_program_simd`: every window reads all
/// result registers (one fabric.read per result per window).
[[nodiscard]] SimdWideResult run_program_simd_wide(
    const CimProgram& program, Fabric& fabric,
    const std::vector<std::vector<bool>>& input_sets);

}  // namespace memcim
