#include "logic/cam.h"

#include "common/error.h"

namespace memcim {

CrsCam::CrsCam(const CamConfig& config) : config_(config) {
  MEMCIM_CHECK_MSG(config_.rows > 0 && config_.word_bits > 0,
                   "CAM dimensions must be positive");
  MEMCIM_CHECK(config_.search_pulses >= 1);
  rows_.resize(config_.rows);
  for (Row& row : rows_) {
    row.value.assign(config_.word_bits, CrsCell(config_.cell));
    row.mask.assign(config_.word_bits, CrsCell(config_.cell));
  }
}

CrsCam::Row& CrsCam::at(std::size_t row) {
  MEMCIM_CHECK_MSG(row < rows_.size(), "CAM row out of range");
  return rows_[row];
}

void CrsCam::write_row(std::size_t row, const std::vector<bool>& word) {
  std::vector<CamBit> ternary(word.size());
  for (std::size_t i = 0; i < word.size(); ++i)
    ternary[i] = word[i] ? CamBit::kOne : CamBit::kZero;
  write_row_ternary(row, ternary);
}

void CrsCam::write_row_ternary(std::size_t row,
                               const std::vector<CamBit>& word) {
  MEMCIM_CHECK_MSG(word.size() == config_.word_bits,
                   "CAM word width mismatch");
  Row& r = at(row);
  for (std::size_t i = 0; i < word.size(); ++i) {
    r.value[i].write(word[i] == CamBit::kOne);
    r.mask[i].write(word[i] != CamBit::kDontCare);
  }
  r.valid = true;
}

void CrsCam::erase_row(std::size_t row) { at(row).valid = false; }

std::vector<CamBit> CrsCam::read_row(std::size_t row) const {
  MEMCIM_CHECK(row < rows_.size());
  const Row& r = rows_[row];
  MEMCIM_CHECK_MSG(r.valid, "reading an erased CAM row");
  std::vector<CamBit> word(config_.word_bits);
  for (std::size_t i = 0; i < word.size(); ++i) {
    if (r.mask[i].state() != CrsState::kOne)
      word[i] = CamBit::kDontCare;
    else
      word[i] = r.value[i].state() == CrsState::kOne ? CamBit::kOne
                                                     : CamBit::kZero;
  }
  return word;
}

CamSearchResult CrsCam::search(const std::vector<bool>& key) {
  MEMCIM_CHECK_MSG(key.size() == config_.word_bits, "CAM key width mismatch");
  CamSearchResult result;
  ++searches_;

  // Match-line evaluation: all rows in parallel, so latency is the
  // fixed precharge+evaluate pulse sequence.
  result.latency =
      config_.cell.t_pulse * static_cast<double>(config_.search_pulses);

  // Energy: each participating (non-masked) cell of every valid row
  // burns one comparison quantum on the match line; mismatching cells
  // additionally discharge it (we charge the cell switching energy as
  // the per-mismatch discharge cost — the dominant dynamic term in
  // published memristive CAM designs).
  Energy energy{0.0};
  for (std::size_t ri = 0; ri < rows_.size(); ++ri) {
    const Row& row = rows_[ri];
    if (!row.valid) continue;
    bool match = true;
    for (std::size_t i = 0; i < key.size(); ++i) {
      if (row.mask[i].state() != CrsState::kOne) continue;  // don't-care
      const bool stored = row.value[i].state() == CrsState::kOne;
      if (stored != key[i]) {
        match = false;
        energy += config_.cell.e_per_switch;  // match-line discharge path
      }
    }
    if (match) result.matching_rows.push_back(ri);
  }
  result.energy = energy;
  total_energy_ += energy;
  return result;
}

void CrsCam::inject_stuck(std::size_t row, std::size_t bit, bool stuck_one) {
  MEMCIM_CHECK_MSG(bit < config_.word_bits, "CAM bit out of range");
  at(row).value[bit].force_stuck(stuck_one ? CrsState::kOne
                                           : CrsState::kZero);
}

std::optional<std::size_t> CrsCam::search_first(const std::vector<bool>& key) {
  const CamSearchResult result = search(key);
  if (result.matching_rows.empty()) return std::nullopt;
  return result.matching_rows.front();
}

}  // namespace memcim
