#include "logic/cam.h"

#include <bit>

#include "common/error.h"
#include "logic/packed.h"
#include "telemetry/telemetry.h"

namespace memcim {

namespace {

struct PackedCamMetrics {
  telemetry::Counter& searches;
  telemetry::Counter& row_blocks;
  PackedCamMetrics()
      : searches(telemetry::Registry::global().counter(
            "logic.packed.cam_searches")),
        row_blocks(telemetry::Registry::global().counter(
            "logic.packed.cam_row_blocks")) {}
};

PackedCamMetrics& packed_cam_metrics() {
  static PackedCamMetrics m;
  return m;
}

}  // namespace

CrsCam::CrsCam(const CamConfig& config)
    : config_(config), energy_sums_(config.cell.e_per_switch.value()) {
  MEMCIM_CHECK_MSG(config_.rows > 0 && config_.word_bits > 0,
                   "CAM dimensions must be positive");
  MEMCIM_CHECK(config_.search_pulses >= 1);
  rows_.resize(config_.rows);
  for (Row& row : rows_) {
    row.value.assign(config_.word_bits, CrsCell(config_.cell));
    row.mask.assign(config_.word_bits, CrsCell(config_.cell));
  }
  const std::size_t blocks = (config_.rows + kPackedLanes - 1) / kPackedLanes;
  packed_value_.assign(blocks * config_.word_bits, 0);
  packed_care_.assign(blocks * config_.word_bits, 0);
  packed_valid_.assign(blocks, 0);
}

CrsCam::Row& CrsCam::at(std::size_t row) {
  MEMCIM_CHECK_MSG(row < rows_.size(), "CAM row out of range");
  return rows_[row];
}

void CrsCam::refresh_packed_row(std::size_t row) {
  const Row& r = rows_[row];
  const std::size_t block = row / kPackedLanes;
  const std::uint64_t bit = std::uint64_t{1} << (row % kPackedLanes);
  for (std::size_t i = 0; i < config_.word_bits; ++i) {
    const std::size_t w = block * config_.word_bits + i;
    if (r.value[i].state() == CrsState::kOne)
      packed_value_[w] |= bit;
    else
      packed_value_[w] &= ~bit;
    if (r.mask[i].state() == CrsState::kOne)
      packed_care_[w] |= bit;
    else
      packed_care_[w] &= ~bit;
  }
  if (r.valid)
    packed_valid_[block] |= bit;
  else
    packed_valid_[block] &= ~bit;
}

void CrsCam::write_row(std::size_t row, const std::vector<bool>& word) {
  std::vector<CamBit> ternary(word.size());
  for (std::size_t i = 0; i < word.size(); ++i)
    ternary[i] = word[i] ? CamBit::kOne : CamBit::kZero;
  write_row_ternary(row, ternary);
}

void CrsCam::write_row_ternary(std::size_t row,
                               const std::vector<CamBit>& word) {
  MEMCIM_CHECK_MSG(word.size() == config_.word_bits,
                   "CAM word width mismatch");
  Row& r = at(row);
  for (std::size_t i = 0; i < word.size(); ++i) {
    r.value[i].write(word[i] == CamBit::kOne);
    r.mask[i].write(word[i] != CamBit::kDontCare);
  }
  r.valid = true;
  refresh_packed_row(row);
}

void CrsCam::erase_row(std::size_t row) {
  at(row).valid = false;
  refresh_packed_row(row);
}

std::vector<CamBit> CrsCam::read_row(std::size_t row) const {
  MEMCIM_CHECK(row < rows_.size());
  const Row& r = rows_[row];
  MEMCIM_CHECK_MSG(r.valid, "reading an erased CAM row");
  std::vector<CamBit> word(config_.word_bits);
  for (std::size_t i = 0; i < word.size(); ++i) {
    if (r.mask[i].state() != CrsState::kOne)
      word[i] = CamBit::kDontCare;
    else
      word[i] = r.value[i].state() == CrsState::kOne ? CamBit::kOne
                                                     : CamBit::kZero;
  }
  return word;
}

void CrsCam::search_scalar(const std::vector<bool>& key,
                           CamSearchResult& result) {
  // Energy: each participating (non-masked) cell of every valid row
  // burns one comparison quantum on the match line; mismatching cells
  // additionally discharge it (we charge the cell switching energy as
  // the per-mismatch discharge cost — the dominant dynamic term in
  // published memristive CAM designs).
  Energy energy{0.0};
  for (std::size_t ri = 0; ri < rows_.size(); ++ri) {
    const Row& row = rows_[ri];
    if (!row.valid) continue;
    bool match = true;
    for (std::size_t i = 0; i < key.size(); ++i) {
      if (row.mask[i].state() != CrsState::kOne) continue;  // don't-care
      const bool stored = row.value[i].state() == CrsState::kOne;
      if (stored != key[i]) {
        match = false;
        energy += config_.cell.e_per_switch;  // match-line discharge path
      }
    }
    if (match) result.matching_rows.push_back(ri);
  }
  result.energy = energy;
}

void CrsCam::search_packed(const std::vector<bool>& key,
                           CamSearchResult& result) {
  // Same semantics and energy book as search_scalar, evaluated 64 rows
  // per word: a row mismatches at bit i iff it is valid, bit i
  // participates, and the stored bit differs from the key bit.  The
  // scalar path accrues one energy quantum per mismatching cell into a
  // single accumulator, so the exact double is the repeated-quantum
  // prefix sum at the total mismatch count.
  const std::size_t blocks = packed_valid_.size();
  std::uint64_t mismatch_total = 0;
  for (std::size_t b = 0; b < blocks; ++b) {
    const std::uint64_t valid = packed_valid_[b];
    std::uint64_t any_mismatch = 0;
    if (valid != 0) {
      const std::uint64_t* value = packed_value_.data() + b * config_.word_bits;
      const std::uint64_t* care = packed_care_.data() + b * config_.word_bits;
      for (std::size_t i = 0; i < config_.word_bits; ++i) {
        const std::uint64_t diff = key[i] ? ~value[i] : value[i];
        const std::uint64_t mm = diff & care[i] & valid;
        mismatch_total += static_cast<std::uint64_t>(std::popcount(mm));
        any_mismatch |= mm;
      }
    }
    std::uint64_t match = valid & ~any_mismatch;
    while (match != 0) {
      const unsigned w = static_cast<unsigned>(std::countr_zero(match));
      result.matching_rows.push_back(b * kPackedLanes + w);
      match &= match - 1;
    }
  }
  result.energy = Energy(energy_sums_.sum(mismatch_total));
  if (telemetry::enabled()) {
    PackedCamMetrics& m = packed_cam_metrics();
    m.searches.add(1);
    m.row_blocks.add(blocks);
  }
}

CamSearchResult CrsCam::search(const std::vector<bool>& key) {
  MEMCIM_CHECK_MSG(key.size() == config_.word_bits, "CAM key width mismatch");
  CamSearchResult result;
  ++searches_;

  // Match-line evaluation: all rows in parallel, so latency is the
  // fixed precharge+evaluate pulse sequence.
  result.latency =
      config_.cell.t_pulse * static_cast<double>(config_.search_pulses);

  if (config_.packed_match)
    search_packed(key, result);
  else
    search_scalar(key, result);
  total_energy_ += result.energy;
  return result;
}

void CrsCam::inject_stuck(std::size_t row, std::size_t bit, bool stuck_one) {
  MEMCIM_CHECK_MSG(bit < config_.word_bits, "CAM bit out of range");
  at(row).value[bit].force_stuck(stuck_one ? CrsState::kOne
                                           : CrsState::kZero);
  refresh_packed_row(row);
}

std::optional<std::size_t> CrsCam::search_first(const std::vector<bool>& key) {
  const CamSearchResult result = search(key);
  if (result.matching_rows.empty()) return std::nullopt;
  return result.matching_rows.front();
}

}  // namespace memcim
