#include "logic/tc_adder.h"

#include "common/error.h"

namespace memcim {

CrsTcAdder::CrsTcAdder(std::size_t width, const CrsCellParams& cell_params)
    : width_(width),
      params_(cell_params),
      carry_cell_(cell_params),
      scratch_cell_(cell_params) {
  MEMCIM_CHECK_MSG(width >= 1 && width <= 64, "width must be 1..64");
  sum_cells_.assign(width, CrsCell(cell_params));
}

TcAdderResult CrsTcAdder::add(std::uint64_t a, std::uint64_t b, bool carry_in) {
  const std::uint64_t pulses_before = [&] {
    std::uint64_t total = carry_cell_.pulses() + scratch_cell_.pulses();
    for (const auto& cell : sum_cells_) total += cell.pulses();
    return total;
  }();
  const Energy energy_before = [&] {
    Energy total = carry_cell_.energy() + scratch_cell_.energy();
    for (const auto& cell : sum_cells_) total += cell.energy();
    return total;
  }();

  // Pulse amplitude that clears both full-write thresholds.
  const double v_amp = params_.v_th2.value() * 1.1;

  // Prologue (2 pulses): preset carry-in, stage scratch.
  carry_cell_.write(carry_in);
  scratch_cell_.write(false);

  bool carry = carry_in;
  for (std::size_t i = 0; i < width_; ++i) {
    const double ai = (a >> i) & 1u ? 1.0 : 0.0;
    const double bi = (b >> i) & 1u ? 1.0 : 0.0;
    const double ci = carry ? 1.0 : 0.0;

    // (1) init carry cell — its previous value is already consumed.
    carry_cell_.write(false);
    // (2) majority pulse: ≥ 2 ones → V ≥ +0.5·v_amp·2 clears V_th2.
    const CrsState carry_before = carry_cell_.state();
    carry_cell_.apply_pulse(Voltage((ai + bi + ci - 1.5) * 2.0 * v_amp));
    // Write-verify sensing: the driver observes the switch event.
    carry = carry_cell_.state() != carry_before;

    // (3) init sum cell.
    sum_cells_[i].write(false);
    // (4) parity pulse: bitsum − 2·carry ∈ {0,1}.
    const double parity = ai + bi + ci - 2.0 * (carry ? 1.0 : 0.0);
    sum_cells_[i].apply_pulse(Voltage((parity - 0.5) * 2.0 * v_amp));
  }

  // Epilogue (3 pulses): final carry read (+ write-back when the read
  // was destructive — we charge the pulse unconditionally to keep the
  // schedule constant-time) and scratch restore.
  const CrsReadResult carry_read = carry_cell_.read();
  if (carry_read.destructive)
    carry_cell_.write(false);
  else
    carry_cell_.apply_pulse(Voltage(0.0));  // timing placeholder pulse
  scratch_cell_.write(false);

  TcAdderResult result;
  result.carry_out = carry;
  result.sum = stored_sum();
  std::uint64_t pulses_after = carry_cell_.pulses() + scratch_cell_.pulses();
  for (const auto& cell : sum_cells_) pulses_after += cell.pulses();
  result.pulses = pulses_after - pulses_before;
  result.latency = params_.t_pulse * static_cast<double>(result.pulses);
  Energy energy_after = carry_cell_.energy() + scratch_cell_.energy();
  for (const auto& cell : sum_cells_) energy_after += cell.energy();
  result.energy = energy_after - energy_before;
  return result;
}

void CrsTcAdder::inject_stuck(std::size_t site, bool stuck_one) {
  MEMCIM_CHECK_MSG(site < fault_sites(), "fault site out of range");
  const CrsState pinned = stuck_one ? CrsState::kOne : CrsState::kZero;
  if (site < width_)
    sum_cells_[site].force_stuck(pinned);
  else if (site == width_)
    carry_cell_.force_stuck(pinned);
  else
    scratch_cell_.force_stuck(pinned);
}

std::uint64_t CrsTcAdder::transitions() const {
  std::uint64_t total = carry_cell_.transitions() + scratch_cell_.transitions();
  for (const auto& cell : sum_cells_) total += cell.transitions();
  return total;
}

std::uint64_t CrsTcAdder::stored_sum() const {
  std::uint64_t value = 0;
  for (std::size_t i = 0; i < width_; ++i)
    if (sum_cells_[i].state() == CrsState::kOne)
      value |= (std::uint64_t{1} << i);
  return value;
}

}  // namespace memcim
