// Device-level IMP fabric — the circuit of Figure 5(a).
//
// Each register is a VCM memristor with its bottom electrode on a
// shared node loaded by R_G to ground.  An IMP step drives the top
// electrode of P with V_COND (sub-threshold) and of Q with V_SET:
//
//   * P in LRS (p = 1): the shared node is pulled toward V_COND, the
//     drop across Q stays below its effective switching window → q
//     unchanged.
//   * P in HRS (p = 0): the node stays near ground, Q sees ≈ V_SET and
//     SETs → q ← 1.
//
// Together: q ← ¬p ∨ q = p IMP q.  The voltage margins, half-select
// creep and the need for abrupt filamentary conductance are all real
// here — see DeviceFabricParams for the constraints.
#pragma once

#include <memory>
#include <vector>

#include "device/vcm.h"
#include "logic/fabric.h"

namespace memcim {

struct DeviceFabricParams {
  VcmParams device;        ///< per-register device (use presets::vcm_taox_logic())
  Voltage v_cond{0.5};     ///< conditioning voltage on P (must stay sub-threshold)
  Voltage v_set{2.0};      ///< SET voltage on Q
  Resistance r_g{316e3};   ///< load resistor; R_on < R_G < R_off (Kvatinsky)
  /// Pulse width of one IMP/SET step in units of the device t_switch;
  /// > 1 gives the conditional SET headroom to complete.
  double pulse_t_switch = 4.0;
  /// Integration substeps per pulse (the shared node is re-solved each
  /// substep, capturing the negative feedback as Q's conductance rises).
  std::size_t substeps = 16;
};

class DeviceFabric final : public Fabric {
 public:
  explicit DeviceFabric(const DeviceFabricParams& params,
                        const LogicCostModel& cost = {});

  /// Analog state of a register (for margin analysis in tests/benches).
  [[nodiscard]] double analog_state(Reg r) const;

  /// Total energy dissipated in the devices (circuit-level, ∫VI dt) —
  /// distinct from the cost-model energy() of the base class.
  [[nodiscard]] Energy circuit_energy() const;

  /// Shared-node voltage solved for the present device states when
  /// V_COND is applied to p and V_SET to q; exposed for tests.
  [[nodiscard]] Voltage imp_node_voltage(Reg p, Reg q) const;

 protected:
  void do_set(Reg r, bool value) override;
  void do_imply(Reg p, Reg q) override;
  [[nodiscard]] bool do_read(Reg r) const override;
  /// Silent state fixup: a pinned register must not accrue device
  /// energy, so bypass the write pulse and place the state directly.
  void do_pin(Reg r, bool value) override;
  void grow(std::size_t n) override;

 private:
  [[nodiscard]] double solve_node(double g_p, double g_q) const;

  DeviceFabricParams params_;
  std::vector<VcmDevice> devices_;
};

}  // namespace memcim
