#include "logic/program.h"

#include "common/error.h"
#include "telemetry/telemetry.h"

namespace memcim {

namespace {

struct ProgramMetrics {
  telemetry::Counter& runs;
  telemetry::Counter& instructions;
  telemetry::Counter& imply_steps;
  telemetry::Counter& simd_windows;
  ProgramMetrics()
      : runs(telemetry::Registry::global().counter("program.runs")),
        instructions(
            telemetry::Registry::global().counter("program.instructions")),
        imply_steps(
            telemetry::Registry::global().counter("program.imply_steps")),
        simd_windows(
            telemetry::Registry::global().counter("program.simd_windows")) {}
};

ProgramMetrics& program_metrics() {
  static ProgramMetrics m;
  return m;
}

/// Telemetry-booking full replay used by the run_program* entry points.
void replay(const CimProgram& program, Fabric& fabric, Reg base,
            const std::vector<bool>& inputs) {
  const std::uint64_t implies =
      replay_program_window(program, fabric, base, inputs);
  if (telemetry::enabled()) {
    ProgramMetrics& m = program_metrics();
    m.runs.add(1);
    m.instructions.add(program.instructions.size());
    m.imply_steps.add(implies);
  }
}

}  // namespace

std::vector<Reg> result_registers(const CimProgram& program) {
  if (!program.outputs.empty()) return program.outputs;
  return {program.output};
}

Reg allocate_program_window(Fabric& fabric, std::size_t registers) {
  MEMCIM_CHECK_MSG(registers > 0, "program has no registers");
  const Reg base = fabric.alloc();
  for (std::size_t i = 1; i < registers; ++i) (void)fabric.alloc();
  return base;
}

std::uint64_t replay_program_window(const CimProgram& program, Fabric& fabric,
                                    Reg base, const std::vector<bool>& inputs,
                                    std::size_t length) {
  MEMCIM_CHECK_MSG(length <= program.length(), "prefix exceeds program");
  MEMCIM_CHECK_MSG(inputs.size() == program.inputs,
                   "program expects " << program.inputs << " inputs, got "
                                      << inputs.size());
  for (std::size_t i = 0; i < inputs.size(); ++i)
    fabric.set(base + i, inputs[i]);
  std::uint64_t implies = 0;
  for (std::size_t i = 0; i < length; ++i) {
    const CimInstruction& inst = program.instructions[i];
    switch (inst.op) {
      case CimOp::kSetFalse:
        fabric.set(base + inst.a, false);
        break;
      case CimOp::kSetTrue:
        fabric.set(base + inst.a, true);
        break;
      case CimOp::kImply:
        fabric.imply(base + inst.a, base + inst.b);
        ++implies;
        break;
    }
  }
  return implies;
}

std::uint64_t replay_program_window(const CimProgram& program, Fabric& fabric,
                                    Reg base,
                                    const std::vector<bool>& inputs) {
  return replay_program_window(program, fabric, base, inputs,
                               program.length());
}

bool run_program(const CimProgram& program, Fabric& fabric,
                 const std::vector<bool>& inputs) {
  const Reg base = allocate_program_window(fabric, program.registers);
  replay(program, fabric, base, inputs);
  return fabric.read(base + program.output);
}

std::vector<bool> run_program_wide(const CimProgram& program, Fabric& fabric,
                                   const std::vector<bool>& inputs) {
  const Reg base = allocate_program_window(fabric, program.registers);
  replay(program, fabric, base, inputs);
  const std::vector<Reg> outs = result_registers(program);
  std::vector<bool> bits;
  bits.reserve(outs.size());
  for (const Reg r : outs) bits.push_back(fabric.read(base + r));
  return bits;
}

SimdRunResult run_program_simd(
    const CimProgram& program, Fabric& fabric,
    const std::vector<std::vector<bool>>& input_sets) {
  MEMCIM_CHECK_MSG(!input_sets.empty(), "SIMD run needs at least one window");
  program_metrics().simd_windows.add(input_sets.size());
  fabric.reset_counters();
  SimdRunResult result;
  result.outputs.reserve(input_sets.size());
  for (const std::vector<bool>& inputs : input_sets) {
    const Reg base = allocate_program_window(fabric, program.registers);
    replay(program, fabric, base, inputs);
    result.outputs.push_back(fabric.read(base + program.output));
  }
  // All windows execute the identical instruction stream concurrently:
  // the pass latency is one window's step count.
  const std::uint64_t steps_per_window =
      fabric.steps() / input_sets.size();
  result.latency = fabric.cost_model().t_step *
                   static_cast<double>(steps_per_window);
  result.energy = fabric.energy();
  result.writes = fabric.writes();
  return result;
}

SimdWideResult run_program_simd_wide(
    const CimProgram& program, Fabric& fabric,
    const std::vector<std::vector<bool>>& input_sets) {
  MEMCIM_CHECK_MSG(!input_sets.empty(), "SIMD run needs at least one window");
  program_metrics().simd_windows.add(input_sets.size());
  fabric.reset_counters();
  const std::vector<Reg> outs = result_registers(program);
  SimdWideResult result;
  result.outputs.reserve(input_sets.size());
  for (const std::vector<bool>& inputs : input_sets) {
    const Reg base = allocate_program_window(fabric, program.registers);
    replay(program, fabric, base, inputs);
    std::vector<bool> bits;
    bits.reserve(outs.size());
    for (const Reg r : outs) bits.push_back(fabric.read(base + r));
    result.outputs.push_back(std::move(bits));
  }
  const std::uint64_t steps_per_window =
      fabric.steps() / input_sets.size();
  result.latency = fabric.cost_model().t_step *
                   static_cast<double>(steps_per_window);
  result.energy = fabric.energy();
  result.writes = fabric.writes();
  return result;
}

}  // namespace memcim
