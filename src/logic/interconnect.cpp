#include "logic/interconnect.h"

#include "common/error.h"

namespace memcim {

ProgrammableInterconnect::ProgrammableInterconnect(
    std::size_t inputs, std::size_t outputs, const CrsCellParams& cell_params)
    : inputs_(inputs), outputs_(outputs) {
  MEMCIM_CHECK_MSG(inputs > 0 && outputs > 0,
                   "interconnect dimensions must be positive");
  junctions_.assign(inputs * outputs, CrsCell(cell_params));
}

CrsCell& ProgrammableInterconnect::at(std::size_t in, std::size_t out) {
  MEMCIM_CHECK_MSG(in < inputs_ && out < outputs_,
                   "junction (" << in << ',' << out << ") out of range");
  return junctions_[in * outputs_ + out];
}

const CrsCell& ProgrammableInterconnect::at(std::size_t in,
                                            std::size_t out) const {
  MEMCIM_CHECK(in < inputs_ && out < outputs_);
  return junctions_[in * outputs_ + out];
}

void ProgrammableInterconnect::connect(std::size_t in, std::size_t out) {
  at(in, out).write(true);
}

void ProgrammableInterconnect::disconnect(std::size_t in, std::size_t out) {
  at(in, out).write(false);
}

bool ProgrammableInterconnect::connected(std::size_t in,
                                         std::size_t out) const {
  return at(in, out).state() == CrsState::kOne;
}

void ProgrammableInterconnect::program_routing(
    const std::vector<std::size_t>& dest_of_input) {
  MEMCIM_CHECK_MSG(dest_of_input.size() == inputs_,
                   "routing vector must name one destination per input");
  for (std::size_t in = 0; in < inputs_; ++in) {
    for (std::size_t out = 0; out < outputs_; ++out)
      if (connected(in, out)) disconnect(in, out);
    connect(in, dest_of_input[in]);
  }
}

bool ProgrammableInterconnect::is_point_to_point() const {
  for (std::size_t out = 0; out < outputs_; ++out) {
    std::size_t drivers = 0;
    for (std::size_t in = 0; in < inputs_; ++in)
      if (connected(in, out)) ++drivers;
    if (drivers > 1) return false;
  }
  return true;
}

std::vector<bool> ProgrammableInterconnect::propagate(
    const std::vector<bool>& input_bits) const {
  MEMCIM_CHECK_MSG(input_bits.size() == inputs_, "input width mismatch");
  std::vector<bool> out(outputs_, false);
  for (std::size_t o = 0; o < outputs_; ++o)
    for (std::size_t in = 0; in < inputs_; ++in)
      if (input_bits[in] && connected(in, o)) {
        out[o] = true;  // wired-OR
        break;
      }
  return out;
}

std::uint64_t ProgrammableInterconnect::programming_pulses() const {
  std::uint64_t total = 0;
  for (const CrsCell& cell : junctions_) total += cell.pulses();
  return total;
}

Energy ProgrammableInterconnect::programming_energy() const {
  Energy total{0.0};
  for (const CrsCell& cell : junctions_) total += cell.energy();
  return total;
}

// ---------------------------------------------------------------------------
// ResistivePla
// ---------------------------------------------------------------------------

ResistivePla::ResistivePla(std::size_t inputs, std::size_t product_terms,
                           std::size_t outputs,
                           const CrsCellParams& cell_params)
    : inputs_(inputs),
      terms_(product_terms),
      outputs_(outputs),
      and_plane_(2 * inputs, product_terms, cell_params),
      or_plane_(product_terms, outputs, cell_params) {
  MEMCIM_CHECK(inputs > 0 && product_terms > 0 && outputs > 0);
}

void ResistivePla::program_product(std::size_t term,
                                   const std::vector<PlaLiteral>& lits) {
  MEMCIM_CHECK_MSG(term < terms_, "product term out of range");
  // Clear the term's column first.
  for (std::size_t w = 0; w < 2 * inputs_; ++w)
    if (and_plane_.connected(w, term)) and_plane_.disconnect(w, term);
  // AND(x,…) = NOR(¬x,…): connect the *complement* wire of each
  // positive literal (and the true wire of each negative literal); the
  // CMOS cell inverts the wired-OR.
  for (const PlaLiteral& lit : lits) {
    MEMCIM_CHECK_MSG(lit.variable < inputs_, "literal variable out of range");
    const std::size_t wire =
        lit.positive ? inputs_ + lit.variable : lit.variable;
    and_plane_.connect(wire, term);
  }
}

void ResistivePla::attach_product(std::size_t term, std::size_t out) {
  MEMCIM_CHECK(term < terms_ && out < outputs_);
  or_plane_.connect(term, out);
}

std::vector<bool> ResistivePla::evaluate(
    const std::vector<bool>& input_bits) const {
  MEMCIM_CHECK_MSG(input_bits.size() == inputs_, "PLA input width mismatch");
  // Drive the AND plane with (x…, ¬x…).
  std::vector<bool> wires(2 * inputs_);
  for (std::size_t i = 0; i < inputs_; ++i) {
    wires[i] = input_bits[i];
    wires[inputs_ + i] = !input_bits[i];
  }
  // Wired-OR then CMOS inversion = the product terms.
  std::vector<bool> nor_in = and_plane_.propagate(wires);
  std::vector<bool> products(terms_);
  for (std::size_t t = 0; t < terms_; ++t) products[t] = !nor_in[t];
  // OR plane collects products per output.
  return or_plane_.propagate(products);
}

Energy ResistivePla::programming_energy() const {
  return and_plane_.programming_energy() + or_plane_.programming_energy();
}

}  // namespace memcim
