#include "logic/fabric.h"

#include "common/error.h"

namespace memcim {

void Fabric::check(Reg r) const {
  MEMCIM_CHECK_MSG(r < size_, "register " << r << " not allocated (size "
                                          << size_ << ")");
}

}  // namespace memcim
