#include "logic/device_fabric.h"

#include "common/error.h"

namespace memcim {

DeviceFabric::DeviceFabric(const DeviceFabricParams& params,
                           const LogicCostModel& cost)
    : Fabric(cost), params_(params) {
  const VcmParams& d = params_.device;
  MEMCIM_CHECK_MSG(params_.v_cond.value() < d.v_th_set.value(),
                   "V_COND must be sub-threshold or P itself would switch");
  MEMCIM_CHECK_MSG(params_.v_set.value() >= d.v_th_set.value(),
                   "V_SET must exceed the SET threshold");
  const double r_on = 1.0 / d.g_on.value();
  const double r_off = 1.0 / d.g_off.value();
  MEMCIM_CHECK_MSG(params_.r_g.value() > r_on && params_.r_g.value() < r_off,
                   "require R_on < R_G < R_off (Kvatinsky design rule)");
  MEMCIM_CHECK(params_.pulse_t_switch > 0.0 && params_.substeps > 0);
}

void DeviceFabric::grow(std::size_t n) {
  while (devices_.size() < n)
    devices_.emplace_back(params_.device, 0.0);
}

double DeviceFabric::analog_state(Reg r) const {
  MEMCIM_CHECK(r < devices_.size());
  return devices_[r].state();
}

Energy DeviceFabric::circuit_energy() const {
  Energy total{0.0};
  for (const auto& d : devices_) total += d.energy_dissipated();
  return total;
}

double DeviceFabric::solve_node(double g_p, double g_q) const {
  // KCL at the shared node: (V_COND−Vn)·gP + (V_SET−Vn)·gQ = Vn/R_G.
  const double g_rg = 1.0 / params_.r_g.value();
  return (params_.v_cond.value() * g_p + params_.v_set.value() * g_q) /
         (g_p + g_q + g_rg);
}

Voltage DeviceFabric::imp_node_voltage(Reg p, Reg q) const {
  MEMCIM_CHECK(p < devices_.size() && q < devices_.size());
  return Voltage(solve_node(devices_[p].state_conductance().value(),
                            devices_[q].state_conductance().value()));
}

void DeviceFabric::do_set(Reg r, bool value) {
  // Unconditional write: isolated device, full ±v_write for t_switch.
  VcmDevice& d = devices_[r];
  const Voltage v = value ? params_.device.v_write
                          : Voltage(-params_.device.v_write.value());
  d.apply(v, params_.device.t_switch);
}

void DeviceFabric::do_imply(Reg p, Reg q) {
  VcmDevice& dp = devices_[p];
  VcmDevice& dq = devices_[q];
  const Time dt = params_.device.t_switch *
                  (params_.pulse_t_switch /
                   static_cast<double>(params_.substeps));
  for (std::size_t s = 0; s < params_.substeps; ++s) {
    const double vn = solve_node(dp.state_conductance().value(),
                                 dq.state_conductance().value());
    dp.apply(Voltage(params_.v_cond.value() - vn), dt);
    dq.apply(Voltage(params_.v_set.value() - vn), dt);
  }
}

void DeviceFabric::do_pin(Reg r, bool value) {
  devices_[r].set_state(value ? 1.0 : 0.0);
}

bool DeviceFabric::do_read(Reg r) const { return devices_[r].is_lrs(); }

}  // namespace memcim
