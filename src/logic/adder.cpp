#include "logic/adder.h"

#include "common/error.h"

namespace memcim {

FullAdderResult full_adder(Fabric& f, Reg a, Reg b, Reg cin) {
  const Reg x = gate_xor(f, a, b);      // 13
  const Reg s = gate_xor(f, x, cin);    // 13
  const Reg g = gate_and(f, a, b);      // 5
  const Reg h = gate_and(f, x, cin);    // 5
  const Reg c = gate_or(f, g, h);       // 7
  return {s, c};
}

GateCost cost_full_adder() {
  const std::size_t steps = 2 * cost_xor().steps + 2 * cost_and().steps +
                            cost_or().steps;
  const std::size_t regs = 2 * cost_xor().registers +
                           2 * cost_and().registers + cost_or().registers;
  return {steps, regs};
}

RippleAdderResult ripple_adder(Fabric& f, std::span<const Reg> a,
                               std::span<const Reg> b) {
  MEMCIM_CHECK_MSG(a.size() == b.size() && !a.empty(),
                   "ripple_adder needs equal non-empty operands");
  RippleAdderResult result;
  result.sum.reserve(a.size());
  Reg carry = f.alloc();
  f.set(carry, false);  // carry-in = 0
  for (std::size_t i = 0; i < a.size(); ++i) {
    const FullAdderResult fa = full_adder(f, a[i], b[i], carry);
    result.sum.push_back(fa.sum);
    carry = fa.carry;
  }
  result.carry_out = carry;
  return result;
}

std::size_t ripple_adder_steps(std::size_t bits) {
  return 1 + cost_full_adder().steps * bits;
}

std::uint64_t add_integers(Fabric& f, std::uint64_t a, std::uint64_t b,
                           std::size_t bits) {
  MEMCIM_CHECK_MSG(bits >= 1 && bits <= 64, "width must be 1..64");
  std::vector<Reg> ra, rb;
  ra.reserve(bits);
  rb.reserve(bits);
  for (std::size_t i = 0; i < bits; ++i) {
    const Reg r1 = f.alloc();
    f.set(r1, (a >> i) & 1u);
    ra.push_back(r1);
    const Reg r2 = f.alloc();
    f.set(r2, (b >> i) & 1u);
    rb.push_back(r2);
  }
  const RippleAdderResult sum = ripple_adder(f, ra, rb);
  std::uint64_t value = 0;
  for (std::size_t i = 0; i < bits; ++i)
    if (f.read(sum.sum[i])) value |= (std::uint64_t{1} << i);
  return value;
}

}  // namespace memcim
