// Stateful-logic fabric: the execution substrate for material
// implication (IMP) programs — Section IV.C of the paper.
//
// A fabric is a growable file of memristive registers supporting the
// three primitive micro-operations of stateful logic:
//
//   set(r, v)    — unconditional write (1 step, 1 device write),
//   imply(p, q)  — q ← p IMP q = ¬p ∨ q (1 step),
//   read(r)      — sense the stored bit.
//
// Every gate, comparator and adder in this library is an IMP program
// over this interface, so the same program runs on:
//
//   * IdealFabric  — boolean semantics (the architecture-level model),
//   * DeviceFabric — two real VCM devices + load resistor R_G driven
//     with V_COND/V_SET (Figure 5(a), Borghetti/Kvatinsky style),
//   * CrsFabric    — one CRS cell per register operated with ±½V_write
//     input voltages (Figure 5(b), Linn in-array style).
//
// The fabric also keeps the cost books: steps (latency quanta — one
// memristor write time each, Table 1: 200 ps) and device writes
// (dynamic energy quanta, Table 1: 1 fJ per write).
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>

#include "common/units.h"
#include "telemetry/telemetry.h"

namespace memcim {

namespace detail {
/// Fabric micro-op tallies, shared by every backend.  Resolved lazily
/// so merely constructing a fabric registers nothing.
struct FabricMetrics {
  telemetry::Counter& sets;
  telemetry::Counter& implies;
  telemetry::Counter& reads;
  telemetry::Counter& steps;
  telemetry::Counter& writes;
  FabricMetrics()
      : sets(telemetry::Registry::global().counter("fabric.set")),
        implies(telemetry::Registry::global().counter("fabric.imply")),
        reads(telemetry::Registry::global().counter("fabric.read")),
        steps(telemetry::Registry::global().counter("fabric.steps")),
        writes(telemetry::Registry::global().counter("fabric.writes")) {}
};

inline FabricMetrics& fabric_metrics() {
  static FabricMetrics m;
  return m;
}
}  // namespace detail

/// Register index within a fabric.
using Reg = std::size_t;

/// Fault-injection hooks consulted by every fabric micro-op (see
/// src/fault/ for the FaultPlan-driven implementation).  The interface
/// lives here so any backend gains fault support without the logic
/// layer depending on the fault subsystem:
///
///   * stuck_value — a permanently pinned register (stuck-at-LRS reads
///     logic 1, stuck-at-HRS logic 0); writes land but do not stick.
///   * write_fails — a transient write failure: the pulse is issued
///     (cost accrues) but the register keeps its old value.
///   * disturb_read — a transient sensing upset: the returned bit may
///     be flipped; the stored state is untouched.
class FabricFaultHooks {
 public:
  virtual ~FabricFaultHooks() = default;
  [[nodiscard]] virtual std::optional<bool> stuck_value(Reg r) const = 0;
  [[nodiscard]] virtual bool write_fails(Reg r) = 0;
  [[nodiscard]] virtual bool disturb_read(Reg r, bool sensed) = 0;
};

/// Latency/energy quanta of one micro-op (Table 1 of the paper).
struct LogicCostModel {
  Time t_step{200e-12};      ///< memristor write time per step
  Energy e_write{1e-15};     ///< dynamic energy per device write
};

class Fabric {
 public:
  explicit Fabric(const LogicCostModel& cost = {}) : cost_(cost) {}
  Fabric(const Fabric&) = default;
  Fabric& operator=(const Fabric&) = default;
  virtual ~Fabric() = default;

  /// Allocate a fresh register (initial state is logic 0; allocation
  /// itself is free — devices exist physically, cost accrues on use).
  [[nodiscard]] Reg alloc() {
    grow(size_ + 1);
    return size_++;
  }

  [[nodiscard]] std::size_t size() const { return size_; }

  /// Unconditional write: set_step_cost() steps, 1 device write.
  void set(Reg r, bool value) {
    check(r);
    if (telemetry::enabled()) {
      detail::FabricMetrics& m = detail::fabric_metrics();
      m.sets.add(1);
      m.steps.add(set_step_cost());
      m.writes.add(1);
    }
    if (faults_ != nullptr) {
      if (const auto s = faults_->stuck_value(r)) {
        // The pulse lands on a pinned device: cost accrues, state does
        // not move off the stuck value.
        pin(r, *s);
        steps_ += set_step_cost();
        ++writes_;
        return;
      }
      if (faults_->write_fails(r)) {
        steps_ += set_step_cost();
        ++writes_;
        return;
      }
    }
    do_set(r, value);
    steps_ += set_step_cost();
    ++writes_;
  }

  /// Material implication q ← p IMP q: imply_step_cost() steps, 1
  /// device write.
  void imply(Reg p, Reg q) {
    check(p);
    check(q);
    if (telemetry::enabled()) {
      detail::FabricMetrics& m = detail::fabric_metrics();
      m.implies.add(1);
      m.steps.add(imply_step_cost());
      m.writes.add(1);
    }
    if (faults_ != nullptr) {
      // The backend computes from its stored state of p, so a stuck p
      // must be physically pinned before the op executes.
      if (const auto sp = faults_->stuck_value(p)) pin(p, *sp);
      if (const auto sq = faults_->stuck_value(q)) {
        pin(q, *sq);
      } else if (faults_->write_fails(q)) {
        // conditional SET pulse dropped: q keeps its old value
      } else {
        do_imply(p, q);
      }
      steps_ += imply_step_cost();
      ++writes_;
      return;
    }
    do_imply(p, q);
    steps_ += imply_step_cost();
    ++writes_;
  }

  /// Sense the digital value of register r (free in the cost model —
  /// readout happens on the sense amps, not the array).
  [[nodiscard]] bool read(Reg r) const {
    check(r);
    detail::fabric_metrics().reads.add(1);
    bool value = do_read(r);
    if (faults_ != nullptr) {
      if (const auto s = faults_->stuck_value(r)) value = *s;
      value = faults_->disturb_read(r, value);
    }
    return value;
  }

  /// Install (or remove, with nullptr) fault hooks.  Ownership stays
  /// with the caller; the hooks must outlive the fabric's use.
  void attach_faults(FabricFaultHooks* hooks) { faults_ = hooks; }
  [[nodiscard]] FabricFaultHooks* faults() const { return faults_; }

  // -- cost books -----------------------------------------------------------
  [[nodiscard]] std::uint64_t steps() const { return steps_; }
  [[nodiscard]] std::uint64_t writes() const { return writes_; }
  [[nodiscard]] Time latency() const {
    return cost_.t_step * static_cast<double>(steps_);
  }
  [[nodiscard]] Energy energy() const {
    return cost_.e_write * static_cast<double>(writes_);
  }
  [[nodiscard]] const LogicCostModel& cost_model() const { return cost_; }

  void reset_counters() {
    steps_ = 0;
    writes_ = 0;
  }

 protected:
  virtual void do_set(Reg r, bool value) = 0;
  virtual void do_imply(Reg p, Reg q) = 0;
  [[nodiscard]] virtual bool do_read(Reg r) const = 0;
  /// Cost-free state fixup for a stuck register: align the backend's
  /// stored state with the pinned value WITHOUT issuing a real pulse.
  /// The default forwards to do_set for backends whose writes carry no
  /// hidden cost book (IdealFabric); device-backed fabrics override it
  /// with a silent state assignment so a pin never accrues device
  /// switching energy — stuck means "energy stops accruing" at every
  /// layer (see docs/TELEMETRY.md).
  virtual void do_pin(Reg r, bool value) { do_set(r, value); }
  /// Ensure backing storage for at least n registers.
  virtual void grow(std::size_t n) = 0;
  /// Latency quanta per primitive; backends whose circuit needs more
  /// than one pulse (e.g. CRS init + operate) override these.
  [[nodiscard]] virtual std::uint64_t set_step_cost() const { return 1; }
  [[nodiscard]] virtual std::uint64_t imply_step_cost() const { return 1; }

 private:
  void check(Reg r) const;

  /// Align the backend's stored state of a stuck register with its
  /// pinned value (cost-free modelling fixup, only when they differ).
  void pin(Reg r, bool value) {
    if (do_read(r) != value) do_pin(r, value);
  }

  LogicCostModel cost_;
  std::size_t size_ = 0;
  std::uint64_t steps_ = 0;
  std::uint64_t writes_ = 0;
  FabricFaultHooks* faults_ = nullptr;
};

}  // namespace memcim
