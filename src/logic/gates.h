// IMP-synthesized gate library.
//
// Every gate is a short material-implication program over a Fabric;
// the sequences are the standard Kvatinsky/Lehtonen constructions
// (paper refs [49, 58, 85]).  Gates are non-destructive: inputs are
// preserved, results land in freshly allocated registers.  Step counts
// (on a 1-step-per-IMP backend) are part of the contract and are
// asserted by tests:
//
//   NOT 2 · COPY 4 · NAND 3 · AND 5 · OR 7 · NOR 9 ·
//   XOR(destructive) 9 · XOR 13 · XNOR 15
//
// The 13-step non-destructive XOR matches the figure the paper's
// Table 1 quotes from ref [58] ("an XOR takes 13 steps").
#pragma once

#include <cstddef>

#include "logic/fabric.h"

namespace memcim {

/// Static cost of a gate: latency steps and registers consumed
/// (work + result), excluding the input registers.
struct GateCost {
  std::size_t steps = 0;
  std::size_t registers = 0;
};

// Each gate returns the register holding its result.

/// r = ¬a.  [2 steps, 1 register]
[[nodiscard]] Reg gate_not(Fabric& f, Reg a);

/// r = a (double implication).  [4 steps, 2 registers]
[[nodiscard]] Reg gate_copy(Fabric& f, Reg a);

/// r = ¬(a ∧ b).  [3 steps, 1 register]
[[nodiscard]] Reg gate_nand(Fabric& f, Reg a, Reg b);

/// r = a ∧ b.  [5 steps, 2 registers]
[[nodiscard]] Reg gate_and(Fabric& f, Reg a, Reg b);

/// r = a ∨ b.  [7 steps, 3 registers]
[[nodiscard]] Reg gate_or(Fabric& f, Reg a, Reg b);

/// r = ¬(a ∨ b).  [9 steps, 4 registers]
[[nodiscard]] Reg gate_nor(Fabric& f, Reg a, Reg b);

/// r = a ⊕ b, *destroys b* (b is left holding ¬a ∨ b).
/// [9 steps, 3 registers]
[[nodiscard]] Reg gate_xor_destructive(Fabric& f, Reg a, Reg b);

/// r = a ⊕ b, inputs preserved.  [13 steps, 5 registers]
[[nodiscard]] Reg gate_xor(Fabric& f, Reg a, Reg b);

/// r = ¬(a ⊕ b), inputs preserved.  [15 steps, 6 registers]
[[nodiscard]] Reg gate_xnor(Fabric& f, Reg a, Reg b);

// Cost metadata (latency on a 1-step-per-primitive backend).
[[nodiscard]] GateCost cost_not();
[[nodiscard]] GateCost cost_copy();
[[nodiscard]] GateCost cost_nand();
[[nodiscard]] GateCost cost_and();
[[nodiscard]] GateCost cost_or();
[[nodiscard]] GateCost cost_nor();
[[nodiscard]] GateCost cost_xor_destructive();
[[nodiscard]] GateCost cost_xor();
[[nodiscard]] GateCost cost_xnor();

}  // namespace memcim
