// CRS in-array IMP fabric — the circuit of Figure 5(b) (Linn et al.,
// Nanotechnology 2012, paper ref [93]): "An alternative approach to
// implement p IMP q, with superior performance".
//
// Each register is one CRS cell.  The inputs are applied as voltage
// levels on the two terminals: logic 1 → +½V_write, logic 0 → −½V_write
// (V_q on T1, V_p on T2).  The cell, initialized to '1', sees
// V = V_q − V_p ∈ {−V_write, 0, +V_write}; it is driven to '0' only for
// (p, q) = (1, 0), so its final state is exactly p IMP q.
//
// Note the semantic difference from the Figure 5(a) style: the CRS IMP
// *overwrites* its target from inputs held elsewhere (the paper's
// 2-step sequence: init Z to '1', then apply V_q/V_p), whereas classic
// IMPLY ORs into the target.  To keep one gate library running on every
// backend, this fabric implements the same q ← ¬p ∨ q contract by
// conditioning the drive on q's own stored value (read, then write the
// implication result), costing 2 steps per IMP: the init pulse and the
// operate pulse.
#pragma once

#include <vector>

#include "device/crs.h"
#include "logic/fabric.h"

namespace memcim {

class CrsFabric final : public Fabric {
 public:
  explicit CrsFabric(const CrsCellParams& cell_params,
                     const LogicCostModel& cost = {});

  [[nodiscard]] const CrsCell& cell(Reg r) const;

  /// Aggregate CRS-cell switching energy (behavioural device book,
  /// distinct from the cost-model energy()).
  [[nodiscard]] Energy cell_energy() const;
  /// Aggregate pulses applied to the cells.
  [[nodiscard]] std::uint64_t cell_pulses() const;

 protected:
  void do_set(Reg r, bool value) override;
  void do_imply(Reg p, Reg q) override;
  [[nodiscard]] bool do_read(Reg r) const override;
  /// Silent state fixup: a pinned register must not accrue cell
  /// switching energy, so bypass write() and place the state directly.
  void do_pin(Reg r, bool value) override;
  void grow(std::size_t n) override;
  /// CRS IMP needs the init pulse plus the operate pulse.
  [[nodiscard]] std::uint64_t imply_step_cost() const override { return 2; }

 private:
  [[nodiscard]] bool sense(Reg r) const;

  CrsCellParams cell_params_;
  std::vector<CrsCell> cells_;
};

}  // namespace memcim
