#include "logic/packed_adder.h"

#include <algorithm>
#include <bit>

#include "common/error.h"
#include "common/parallel.h"
#include "common/quantum_sum.h"
#include "telemetry/telemetry.h"

namespace memcim {

namespace {

struct PackedAdderMetrics {
  telemetry::Counter& ops;
  telemetry::Counter& lane_blocks;
  PackedAdderMetrics()
      : ops(telemetry::Registry::global().counter("logic.packed.adder_ops")),
        lane_blocks(telemetry::Registry::global().counter(
            "logic.packed.adder_lane_blocks")) {}
};

PackedAdderMetrics& packed_adder_metrics() {
  static PackedAdderMetrics m;
  return m;
}

}  // namespace

PackedTcAdderFarm::PackedTcAdderFarm(std::size_t slots, std::size_t width,
                                     const CrsCellParams& cell)
    : slots_(slots),
      width_(width),
      cell_(cell),
      sum_mask_((std::uint64_t{1} << width) - 1) {
  MEMCIM_CHECK_MSG(slots >= 1, "farm needs at least one slot");
  MEMCIM_CHECK_MSG(width >= 1 && width <= 63,
                   "packed adder width must be 1..63");
  // Same parameter validation (and failure mode) as building the
  // scalar CrsCell farm.
  (void)CrsCell(cell);
  stored_sum_.assign(slots, 0);
  carry_state_.assign(slots, 0);
  cum_carry_.assign(slots, 0);
  cum_sum_.assign(slots * width, 0);
  e_prev_.assign(slots, 0.0);
}

std::uint64_t PackedTcAdderFarm::stored_sum(std::size_t slot) const {
  MEMCIM_CHECK(slot < slots_);
  return stored_sum_[slot];
}

PackedAddOutcome PackedTcAdderFarm::run(const std::vector<std::uint64_t>& a,
                                        const std::vector<std::uint64_t>& b,
                                        std::size_t chunk_grain) {
  MEMCIM_CHECK_MSG(a.size() == b.size(), "operand vectors must pair up");
  const std::size_t n_ops = a.size();
  PackedAddOutcome out;
  out.sums.assign(n_ops, 0);
  out.energies.assign(n_ops, 0.0);

  const std::size_t blocks = packed_lane_blocks(slots_);
  out.lane_blocks = blocks;
  // The caller's grain is expressed in ops; a lane block covers up to
  // kPackedLanes ops per batch, so convert to whole blocks.
  const std::size_t block_grain =
      std::max<std::size_t>(1, chunk_grain / kPackedLanes);

  std::vector<std::uint64_t> block_transitions(blocks, 0);
  parallel_for_chunks(0, blocks, block_grain, [&](std::size_t b0,
                                                  std::size_t b1) {
    // One prefix-sum table per chunk: the memoized values depend only
    // on the quantum, never on query order, so sharing across the
    // chunk's slots is free and keeps the table warm.
    QuantumSumTable table(cell_.e_per_switch.value());
    for (std::size_t blk = b0; blk < b1; ++blk) {
      const std::size_t slot_begin = blk * kPackedLanes;
      const std::size_t slot_end =
          std::min(slot_begin + kPackedLanes, slots_);
      std::uint64_t transitions = 0;
      for (std::size_t s = slot_begin; s < slot_end; ++s) {
        std::uint64_t* cum_sum = cum_sum_.data() + s * width_;
        // Ops land on slot s in ascending order — the scalar farm's
        // batch schedule (op k runs on slot k % slots).
        for (std::size_t op = s; op < n_ops; op += slots_) {
          const std::uint64_t av = a[op];
          const std::uint64_t bv = b[op];
          const std::uint64_t full = av + bv;
          const std::uint64_t sum_new = full & sum_mask_;
          const std::uint64_t c_out = (full >> width_) & 1u;
          // Carries generated into bits 1..N (bit 0 of the XOR is 0).
          const std::uint64_t carries =
              static_cast<std::uint64_t>(std::popcount(full ^ av ^ bv));
          const std::uint64_t stale = carry_state_[s];
          // stale + c_in + 2S + 2 − 3·c_out with c_in = 0; c_out = 1
          // implies S >= 1, so the subtraction cannot underflow.
          const std::uint64_t t_carry =
              stale + 2 * carries + 2 - 3 * c_out;
          const std::uint64_t old_sum = stored_sum_[s];
          transitions +=
              t_carry +
              static_cast<std::uint64_t>(std::popcount(old_sum)) +
              static_cast<std::uint64_t>(std::popcount(sum_new));
          // Replay the scalar energy fold over this slot's cells:
          // (carry + scratch) then each sum cell in index order; the
          // scratch cell never transitions, so its term is +0.0 and
          // drops out bit-exactly.
          cum_carry_[s] += t_carry;
          double e = table.sum(cum_carry_[s]);
          for (std::size_t i = 0; i < width_; ++i) {
            cum_sum[i] += ((old_sum >> i) & 1u) + ((sum_new >> i) & 1u);
            e += table.sum(cum_sum[i]);
          }
          out.sums[op] = sum_new;
          out.energies[op] = e - e_prev_[s];
          e_prev_[s] = e;
          stored_sum_[s] = sum_new;
          carry_state_[s] = static_cast<std::uint8_t>(c_out);
        }
      }
      block_transitions[blk] = transitions;
    }
  });

  // Exact u64 total — order-free, but reduce in block order anyway.
  for (std::size_t blk = 0; blk < blocks; ++blk)
    out.transitions += block_transitions[blk];

  if (telemetry::enabled()) {
    PackedAdderMetrics& m = packed_adder_metrics();
    m.ops.add(n_ops);
    m.lane_blocks.add(blocks);
  }
  return out;
}

}  // namespace memcim
