// Memristive comparators — the CIM work-horse of the paper's DNA
// sequencing example (Table 1: "Comparator: 2 XOR and a NAND
// implemented by implication logic [58]; 13 memristors; 16 steps").
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "logic/fabric.h"

namespace memcim {

/// Cost sheet of a 2-bit (one nucleotide) comparator.
struct ComparatorCost {
  /// Latency when the two XORs run on disjoint rows in parallel: the
  /// paper's 16 steps (XOR 13 + NAND 3).
  std::size_t parallel_steps = 16;
  /// Latency when everything shares one row (13 + 13 + 3).
  std::size_t serial_steps = 29;
  /// Device count as the paper tallies it (2 XOR · 5 + NAND · 3).
  std::size_t devices = 13;
};

[[nodiscard]] ComparatorCost comparator_cost();

/// The paper's literal circuit: out = NAND(a1 ⊕ b1, a0 ⊕ b0).
/// Note this is *not* an equality test (it is 0 only when both bit
/// positions differ); we reproduce it verbatim and provide the
/// semantically-correct equality_comparator() below.  The fabric
/// executes sequentially, so the measured steps equal serial_steps;
/// the architecture model uses parallel_steps per Table 1.
[[nodiscard]] Reg paper_comparator(Fabric& f, Reg a1, Reg a0, Reg b1, Reg b0);

/// out = (a1 == b1) ∧ (a0 == b0) = NOR(a1 ⊕ b1, a0 ⊕ b0): a true 2-bit
/// equality comparator (used by the functional DNA pipeline).
[[nodiscard]] Reg equality_comparator(Fabric& f, Reg a1, Reg a0, Reg b1,
                                      Reg b0);

/// N-bit word equality: AND-reduction of per-bit XNORs.
[[nodiscard]] Reg word_equality(Fabric& f, std::span<const Reg> a,
                                std::span<const Reg> b);

/// Helper: load a bit vector into freshly allocated registers.
[[nodiscard]] std::vector<Reg> load_word(Fabric& f,
                                         const std::vector<bool>& bits);

}  // namespace memcim
