#include "logic/crs_fabric.h"

#include "common/error.h"

namespace memcim {

CrsFabric::CrsFabric(const CrsCellParams& cell_params,
                     const LogicCostModel& cost)
    : Fabric(cost), cell_params_(cell_params) {}

void CrsFabric::grow(std::size_t n) {
  while (cells_.size() < n)
    cells_.emplace_back(cell_params_, CrsState::kZero);
}

const CrsCell& CrsFabric::cell(Reg r) const {
  MEMCIM_CHECK(r < cells_.size());
  return cells_[r];
}

Energy CrsFabric::cell_energy() const {
  Energy total{0.0};
  for (const auto& c : cells_) total += c.energy();
  return total;
}

std::uint64_t CrsFabric::cell_pulses() const {
  std::uint64_t total = 0;
  for (const auto& c : cells_) total += c.pulses();
  return total;
}

bool CrsFabric::sense(Reg r) const {
  const CrsState s = cells_[r].state();
  MEMCIM_CHECK_MSG(s != CrsState::kOn && s != CrsState::kUndefined,
                   "CRS register left in transient state " << to_string(s));
  return s == CrsState::kOne;
}

void CrsFabric::do_set(Reg r, bool value) { cells_[r].write(value); }

void CrsFabric::do_pin(Reg r, bool value) {
  cells_[r].set_state(value ? CrsState::kOne : CrsState::kZero);
}

void CrsFabric::do_imply(Reg p, Reg q) {
  // q ← ¬p ∨ q.  Current values are sensed from the cells; the operate
  // pulse applies V = V_q_in − V_p_in with the target initialized to
  // '1'.  Init and operate are the 2 pulses of the paper's sequence
  // (the read is on the sense amps, free in the cost model).
  const bool pv = sense(p);
  const bool qv = sense(q);
  CrsCell& target = cells_[q];
  const double half = cell_params_.v_th2.value() * 1.1 / 2.0;
  // Init Z to '1' (paper step 1).
  target.apply_pulse(Voltage(2.0 * half * 1.0));
  // Operate (paper step 2): V = V_q − V_p, inputs at ±½V_write.  Only
  // (p,q) = (1,0) yields −V_write and flips the target to '0'.
  const double vq = qv ? +half : -half;
  const double vp = pv ? +half : -half;
  target.apply_pulse(Voltage(vq - vp));
}

bool CrsFabric::do_read(Reg r) const { return sense(r); }

}  // namespace memcim
