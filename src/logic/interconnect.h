// Programmable interconnect and resistive PLA — Section IV.C(a):
// "Programmable logic arrays based on resistive switching junctions
// were suggested first in [82] and later also applied to FPGAs [86]. …
// the CMOL FPGA concept [87], where a sea of elementary CMOS cells is
// connected to a small crossbar part-array … via resistive switches
// (1S1R) enabling wired-or functionality."
//
// Two layers are provided:
//
//  * `ProgrammableInterconnect` — a crossbar of CRS junctions between
//    input wires and output wires.  A programmed (LRS-path) junction
//    ties its input onto its output; outputs compute the wired-OR of
//    their connected inputs (CMOL style).  Programming costs real cell
//    pulses/energy; signal propagation is charged per toggled output.
//
//  * `ResistivePla` — the classic two-plane programmable logic array
//    built from two interconnects: an AND plane over the inputs and
//    their complements (product terms) and an OR plane collecting the
//    products per output.  Any sum-of-products function becomes a
//    reconfiguration, not a new circuit — the FPGA argument of [86].
#pragma once

#include <cstdint>
#include <vector>

#include "device/crs.h"

namespace memcim {

class ProgrammableInterconnect {
 public:
  ProgrammableInterconnect(std::size_t inputs, std::size_t outputs,
                           const CrsCellParams& cell_params);

  [[nodiscard]] std::size_t inputs() const { return inputs_; }
  [[nodiscard]] std::size_t outputs() const { return outputs_; }

  /// Program / release the junction between `in` and `out`.
  void connect(std::size_t in, std::size_t out);
  void disconnect(std::size_t in, std::size_t out);
  [[nodiscard]] bool connected(std::size_t in, std::size_t out) const;

  /// Configure a full point-to-point routing: input i drives output
  /// dest_of_input[i] (inputs may share an output — wired-OR).
  void program_routing(const std::vector<std::size_t>& dest_of_input);

  /// True when every output has at most one connected input.
  [[nodiscard]] bool is_point_to_point() const;

  /// Wired-OR propagation: output j = OR of all connected inputs.
  [[nodiscard]] std::vector<bool> propagate(
      const std::vector<bool>& input_bits) const;

  /// Programming cost books (per-cell pulses and switching energy).
  [[nodiscard]] std::uint64_t programming_pulses() const;
  [[nodiscard]] Energy programming_energy() const;

 private:
  [[nodiscard]] CrsCell& at(std::size_t in, std::size_t out);
  [[nodiscard]] const CrsCell& at(std::size_t in, std::size_t out) const;

  std::size_t inputs_;
  std::size_t outputs_;
  std::vector<CrsCell> junctions_;  // row-major inputs × outputs
};

/// One literal of a product term: variable index, possibly complemented.
struct PlaLiteral {
  std::size_t variable = 0;
  bool positive = true;
};

class ResistivePla {
 public:
  ResistivePla(std::size_t inputs, std::size_t product_terms,
               std::size_t outputs, const CrsCellParams& cell_params);

  [[nodiscard]] std::size_t inputs() const { return inputs_; }
  [[nodiscard]] std::size_t product_terms() const { return terms_; }
  [[nodiscard]] std::size_t outputs() const { return outputs_; }

  /// Program product term `term` as the AND of the given literals
  /// (empty literal list = constant true).
  void program_product(std::size_t term, const std::vector<PlaLiteral>& lits);

  /// Attach product term `term` to output `out` (OR plane).
  void attach_product(std::size_t term, std::size_t out);

  /// Evaluate all outputs for an input vector (LSB-first).
  [[nodiscard]] std::vector<bool> evaluate(
      const std::vector<bool>& input_bits) const;

  /// Total junction-programming energy across both planes.
  [[nodiscard]] Energy programming_energy() const;

 private:
  std::size_t inputs_;
  std::size_t terms_;
  std::size_t outputs_;
  /// AND plane: 2·inputs wires (x, ¬x) × terms.  A product term is the
  /// NOR of the *complement* literals' wires — realized as wired-OR
  /// followed by the CMOS cell's inverter (CMOL), giving AND semantics.
  ProgrammableInterconnect and_plane_;
  ProgrammableInterconnect or_plane_;
};

}  // namespace memcim
