// Memristive content-addressable memory — Section IV.C(b): "Moreover,
// CAMs based on memristors are feasible with different flavors [90,91];
// e.g., a CRS-based CAM is recently demonstrated [84]".
//
// Each row stores a word in CRS cells (plus a per-bit mask for the
// ternary flavour); a search broadcasts the key on the match lines and
// every row evaluates in parallel.  In hardware the match is a
// wired-AND of per-bit XNORs sensed on the row's match line in one
// cycle; we model that as: match-phase latency = one search pulse
// sequence regardless of the row count, energy = per-cell comparison
// energy summed over all cells that participate.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/quantum_sum.h"
#include "device/crs.h"

namespace memcim {

/// One ternary bit of a stored CAM word.
enum class CamBit : std::uint8_t {
  kZero,
  kOne,
  kDontCare,  ///< matches either key bit (ternary CAM)
};

struct CamConfig {
  std::size_t rows = 64;
  std::size_t word_bits = 32;
  CrsCellParams cell{};
  /// Match-line evaluation: precharge + evaluate, two array pulses.
  std::size_t search_pulses = 2;
  /// Evaluate searches on the bit-sliced match index (rows packed 64
  /// per u64 word with ternary don't-care masks) instead of walking
  /// the cell file row by row.  Bitwise-identical results and energy
  /// book; the scalar path remains for differential testing.
  bool packed_match = true;
};

struct CamSearchResult {
  std::vector<std::size_t> matching_rows;
  Time latency{0.0};   ///< one parallel search (row-count independent)
  Energy energy{0.0};  ///< summed cell comparison energy of this search
};

class CrsCam {
 public:
  explicit CrsCam(const CamConfig& config);

  [[nodiscard]] const CamConfig& config() const { return config_; }

  /// Program a row with a binary word (LSB first).
  void write_row(std::size_t row, const std::vector<bool>& word);
  /// Program a row with a ternary word (don't-cares allowed).
  void write_row_ternary(std::size_t row, const std::vector<CamBit>& word);
  /// Invalidate a row: it matches nothing until rewritten.
  void erase_row(std::size_t row);

  [[nodiscard]] std::vector<CamBit> read_row(std::size_t row) const;

  /// Parallel search: every valid row whose word matches `key` under
  /// the ternary rules.
  [[nodiscard]] CamSearchResult search(const std::vector<bool>& key);

  /// First matching row, if any (priority encoder behaviour).
  [[nodiscard]] std::optional<std::size_t> search_first(
      const std::vector<bool>& key);

  /// Fault injection: pin the value cell at (row, bit) stuck at logic
  /// `stuck_one`; later rewrites of the row cannot move it, so searches
  /// run against the corrupted stored word.
  void inject_stuck(std::size_t row, std::size_t bit, bool stuck_one);

  // -- lifetime statistics ---------------------------------------------------
  [[nodiscard]] std::uint64_t searches() const { return searches_; }
  [[nodiscard]] Energy total_energy() const { return total_energy_; }

 private:
  struct Row {
    std::vector<CrsCell> value;  ///< stored bit (CRS '1' = 1)
    std::vector<CrsCell> mask;   ///< CRS '1' = bit participates in match
    bool valid = false;
  };

  [[nodiscard]] Row& at(std::size_t row);

  /// Rebuild the packed match words of one row from the actual cell
  /// states (so stuck cells are reflected, not the requested write).
  void refresh_packed_row(std::size_t row);
  void search_scalar(const std::vector<bool>& key, CamSearchResult& result);
  void search_packed(const std::vector<bool>& key, CamSearchResult& result);

  CamConfig config_;
  std::vector<Row> rows_;
  std::uint64_t searches_ = 0;
  Energy total_energy_{0.0};
  // Bit-sliced match index: for row block b and bit column i, word
  // [b * word_bits + i] holds one bit per row — value word (stored bit
  // is '1') and care word (bit participates; '0' = don't-care).  One
  // valid word per block gates erased rows.
  std::vector<std::uint64_t> packed_value_;
  std::vector<std::uint64_t> packed_care_;
  std::vector<std::uint64_t> packed_valid_;
  /// Exact replay of the scalar per-mismatch energy accumulation.
  QuantumSumTable energy_sums_;
};

}  // namespace memcim
