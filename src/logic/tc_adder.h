// CRS crossbar TC-adder — the adder the paper budgets for the
// "10⁶ additions" workload (Table 1, from Siemon et al.,
// arXiv:1410.2031, paper ref [59]):
//
//   * devices per N-bit adder: N + 2,
//   * steps per addition: 4N + 5 (each step one memristor write time),
//   * results stay resident in the crossbar (no readout cost — the
//     computation-in-memory point of the architecture).
//
// Implementation: genuine threshold-logic on CRS cells.  The cell file
// holds N sum cells, one carry cell and one scratch cell.  Per bit i
// the controller issues exactly 4 pulses:
//
//   1. init the carry cell to '0',
//   2. a *majority pulse*: the superposed input levels give the cell
//      V = (aᵢ + bᵢ + cᵢ − 1.5)·V_amp, which exceeds +V_th2 exactly
//      when at least two inputs are 1 → the cell latches the carry-out;
//      the write driver's current monitor observes whether the cell
//      switched, giving the controller the digital carry for free
//      (write-verify sensing),
//   3. init sum cell i to '0',
//   4. a *parity pulse*: V = (aᵢ + bᵢ + cᵢ − 2·cₒᵤₜ − 0.5)·2·V_amp
//      SETs the sum cell exactly when the bit sum is odd.
//
// Prologue/epilogue add the remaining 5 pulses: carry-in preset (1),
// scratch stage/restore (2), and the final carry read + write-back (2).
#pragma once

#include <cstdint>
#include <vector>

#include "device/crs.h"

namespace memcim {

struct TcAdderResult {
  std::uint64_t sum = 0;        ///< numeric sum (mod 2^width)
  bool carry_out = false;
  std::uint64_t pulses = 0;     ///< total pulses issued (= 4N+5)
  Time latency{0.0};
  Energy energy{0.0};           ///< CRS switching energy of this add
};

class CrsTcAdder {
 public:
  CrsTcAdder(std::size_t width, const CrsCellParams& cell_params);

  [[nodiscard]] std::size_t width() const { return width_; }

  /// Add two integers (mod 2^width); the sum bits are left latched in
  /// the sum cells.
  [[nodiscard]] TcAdderResult add(std::uint64_t a, std::uint64_t b,
                                  bool carry_in = false);

  /// Read the sum currently latched in the cells (sense-amp side; no
  /// pulses issued).
  [[nodiscard]] std::uint64_t stored_sum() const;

  /// Lifetime cell state transitions across all adds (endurance /
  /// energy-window tally).
  [[nodiscard]] std::uint64_t transitions() const;

  /// Fault-site indexing for inject_stuck(): sites 0..width-1 are the
  /// sum cells, site width the carry cell, site width+1 the scratch
  /// cell — devices(width) sites in total.
  [[nodiscard]] std::size_t fault_sites() const { return width_ + 2; }

  /// Fault injection: pin the cell at `site` stuck at logic
  /// `stuck_one`; every subsequent add runs through the broken device.
  void inject_stuck(std::size_t site, bool stuck_one);

  /// Paper cost sheet.
  [[nodiscard]] static constexpr std::size_t devices(std::size_t n) {
    return n + 2;
  }
  [[nodiscard]] static constexpr std::size_t steps(std::size_t n) {
    return 4 * n + 5;
  }

 private:
  std::size_t width_;
  CrsCellParams params_;
  std::vector<CrsCell> sum_cells_;
  CrsCell carry_cell_;
  CrsCell scratch_cell_;
};

}  // namespace memcim
