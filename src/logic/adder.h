// IMPLY ripple-carry adder — "IMP can be used to design arithmetic
// operations such as adders [58, 56]; hence, it paves the path to more
// complex memristive in-memory-computing architectures" (Section IV.C).
//
// This is the straightforward gate-level construction (full adder from
// XOR/AND/OR IMP programs); it is deliberately unoptimized so that
// bench_ablation_adders can show why the CRS TC-adder's 4N+5 schedule
// (tc_adder.h) is the one the paper budgets in Table 1.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "logic/fabric.h"
#include "logic/gates.h"

namespace memcim {

struct FullAdderResult {
  Reg sum;
  Reg carry;
};

/// One-bit full adder: sum = a⊕b⊕cin, carry = ab ∨ cin(a⊕b).
/// [43 steps, 17 registers on a 1-step backend]
[[nodiscard]] FullAdderResult full_adder(Fabric& f, Reg a, Reg b, Reg cin);

[[nodiscard]] GateCost cost_full_adder();

struct RippleAdderResult {
  std::vector<Reg> sum;  ///< LSB first, same width as the inputs
  Reg carry_out;
};

/// N-bit ripple-carry adder over register words (LSB first).
[[nodiscard]] RippleAdderResult ripple_adder(Fabric& f,
                                             std::span<const Reg> a,
                                             std::span<const Reg> b);

/// Steps of an N-bit ripple add on a 1-step backend (1 + 43·N: the
/// leading step initializes the carry-in register).
[[nodiscard]] std::size_t ripple_adder_steps(std::size_t bits);

/// Convenience: add two integers through the fabric and return the
/// numeric result (LSB-first word load, ripple add, word read).
[[nodiscard]] std::uint64_t add_integers(Fabric& f, std::uint64_t a,
                                         std::uint64_t b, std::size_t bits);

}  // namespace memcim
