// Phase-change memory (PCM) device model — the first of the paper's
// three memristor classes ("they can be classified based on their
// dominant physical operating mechanism into three classes [30]: Phase
// Change Memories, Electrostatic/Electronic Effects Memories, and Redox
// memories", Section IV.A).
//
// The state variable is the crystalline fraction x (1 = crystalline =
// LRS).  Unlike the bipolar VCM/ECM cells, PCM is *unipolar*: switching
// is driven by Joule heating, not field polarity —
//
//   * SET (crystallize): moderate power holds the cell between the
//     crystallization and melting points; x grows on the (slow)
//     crystallization timescale,
//   * RESET (amorphize): high power melts the cell; the quench after
//     the pulse freezes it amorphous — fast,
//   * the ovonic threshold switch: above |V_ovonic| the amorphous phase
//     snaps electronically conductive, which is what lets a SET pulse
//     heat an otherwise high-resistance cell,
//   * resistance drift: the amorphous resistance ages upward as
//     R ∝ (t/t₀)^ν — the PCM-specific retention effect.
#pragma once

#include "device/device.h"

namespace memcim {

struct PcmParams {
  Conductance g_on{1.0 / 5e3};     ///< crystalline (R ≈ 5 kΩ)
  Conductance g_off{1.0 / 500e3};  ///< amorphous at age t₀ (R ≈ 500 kΩ)
  Voltage v_ovonic{1.2};           ///< threshold-switching voltage
  /// Heating zones (with g_on = 200 µS: crystallize from ~0.5 V,
  /// melt from ~2.24 V — a 1.5 V SET pulse sits safely in between).
  Power p_crystallize{50e-6};  ///< ≥ this: crystallization zone
  Power p_melt{1e-3};          ///< ≥ this: melting (RESET) zone
  Time t_set{100e-9};              ///< full crystallization at SET power
  Time t_reset{1e-9};              ///< melt-quench time
  /// Amorphous drift exponent ν: G_amorphous(t) = g_off·(t/t₀)^(−ν).
  double drift_nu = 0.05;
  Time drift_t0{1e-6};             ///< age normalization
};

class PcmDevice final : public Device {
 public:
  explicit PcmDevice(const PcmParams& params, double initial_state = 0.0);

  [[nodiscard]] Current current(Voltage v) const override;
  void apply(Voltage v, Time dt) override;
  [[nodiscard]] double state() const override { return x_; }
  void set_state(double x) override;
  [[nodiscard]] std::unique_ptr<Device> clone() const override;

  [[nodiscard]] const PcmParams& params() const { return params_; }

  /// Age of the amorphous phase since the last melt.
  [[nodiscard]] Time amorphous_age() const { return age_; }

  /// Effective conductance including ovonic snap and drift.
  [[nodiscard]] Conductance effective_conductance(Voltage v) const;

 private:
  [[nodiscard]] double drifted_off_conductance() const;

  PcmParams params_;
  double x_;
  Time age_{1e-6};  ///< starts at t₀ (freshly quenched reference)
};

}  // namespace memcim
