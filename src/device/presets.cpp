#include "device/presets.h"

namespace memcim::presets {

using namespace memcim::literals;

VcmParams vcm_taox() {
  VcmParams p;
  p.g_on = 1.0 / 10.0_kohm;
  p.g_off = 1.0 / 10.0_Mohm;  // OFF/ON = 1000 (ref [46] reports >1e3)
  p.v_th_set = 0.8_V;
  p.v_th_reset = -0.8_V;
  p.v_write = 2.0_V;
  p.t_switch = 200.0_ps;  // ref [42]
  p.kinetics_v0 = 0.15_V;
  return p;
}

VcmParams vcm_hfox() {
  VcmParams p;
  p.g_on = 1.0 / 25.0_kohm;
  p.g_off = 1.0 / 50.0_Mohm;
  p.v_th_set = 0.9_V;
  p.v_th_reset = -1.0_V;
  p.v_write = 2.2_V;
  p.t_switch = 10.0_ns;  // ref [41]: "nanosecond switching"
  p.kinetics_v0 = 0.2_V;
  return p;
}

VcmParams vcm_taox_logic() {
  VcmParams p = vcm_taox();
  p.kinetics_v0 = 0.10_V;
  p.conductance_shape = 8.0;
  p.snap_x = 0.3;
  return p;
}

EcmParams ecm_ag() {
  EcmParams p;
  p.g_on = 1.0 / 25.0_kohm;
  p.g_off = 1.0 / 100.0_Mohm;
  p.v_th_set = 0.25_V;
  p.v_th_reset = -0.15_V;
  p.v_write = 1.0_V;
  p.t_switch = 10.0_ns;  // ref [64]
  p.kinetics_v0 = 0.1_V;
  p.reset_asymmetry = 3.0;
  return p;
}

LinearIonDriftParams ion_drift_tio2() {
  LinearIonDriftParams p;
  p.r_on = 100.0_ohm;
  p.r_off = 16.0_kohm;  // OFF/ON = 160, the Strukov Nature device
  p.depth = 10.0_nm;
  p.mobility = 1e-14;
  p.window = WindowFunction::kJoglekar;
  p.window_p = 1.0;
  return p;
}

CrsCellParams crs_cell() {
  CrsCellParams p;
  p.v_th1 = 1.0_V;
  p.v_th2 = 2.0_V;
  p.v_th3 = -1.0_V;
  p.v_th4 = -2.0_V;
  p.v_read = 1.5_V;
  p.t_pulse = 200.0_ps;     // Table 1: memristor write time
  p.e_per_switch = 1.0_fJ;  // Table 1: dynamic energy per write
  p.r_lrs = 10.0_kohm;
  return p;
}

std::unique_ptr<CrsDevice> make_crs_ecm() {
  const EcmParams p = ecm_ag();
  // '0' state: A HRS, B LRS.
  auto a = std::make_unique<EcmDevice>(p, 0.0);
  auto b = std::make_unique<EcmDevice>(p, 1.0);
  return std::make_unique<CrsDevice>(std::move(a), std::move(b));
}

std::unique_ptr<CrsDevice> make_crs_vcm() {
  const VcmParams p = vcm_taox();
  auto a = std::make_unique<VcmDevice>(p, 0.0);
  auto b = std::make_unique<VcmDevice>(p, 1.0);
  return std::make_unique<CrsDevice>(std::move(a), std::move(b));
}

}  // namespace memcim::presets
