#include "device/fit.h"

#include <cmath>

#include "common/error.h"

namespace memcim {

VcmKineticsFit fit_vcm_kinetics(const std::vector<SwitchingPoint>& points,
                                Voltage v_write) {
  MEMCIM_CHECK_MSG(points.size() >= 2, "need at least two switching points");
  // ln t = ln t0 − (V − V_w)/v0  ⇒ regress y = ln t against x = V:
  // slope = −1/v0, intercept anchors t0 at V_w.
  double sx = 0.0, sy = 0.0, sxx = 0.0, sxy = 0.0;
  const auto n = static_cast<double>(points.size());
  for (const SwitchingPoint& p : points) {
    MEMCIM_CHECK(p.voltage.value() > 0.0 && p.switching_time.value() > 0.0);
    const double x = p.voltage.value();
    const double y = std::log(p.switching_time.value());
    sx += x;
    sy += y;
    sxx += x * x;
    sxy += x * y;
  }
  const double denom = n * sxx - sx * sx;
  MEMCIM_CHECK_MSG(std::abs(denom) > 1e-18,
                   "switching points need at least two distinct voltages");
  const double slope = (n * sxy - sx * sy) / denom;
  MEMCIM_CHECK_MSG(slope < 0.0,
                   "switching time must decrease with voltage (got a "
                   "non-negative slope)");
  const double intercept = (sy - slope * sx) / n;

  VcmKineticsFit fit;
  fit.kinetics_v0 = Voltage(-1.0 / slope);
  fit.t_switch = Time(std::exp(intercept + slope * v_write.value()));
  double sse = 0.0;
  for (const SwitchingPoint& p : points) {
    const double pred = intercept + slope * p.voltage.value();
    const double resid = std::log(p.switching_time.value()) - pred;
    sse += resid * resid;
  }
  fit.log_rmse = std::sqrt(sse / n);
  return fit;
}

VcmParams calibrated_vcm(const VcmParams& base,
                         const std::vector<SwitchingPoint>& points) {
  const VcmKineticsFit fit = fit_vcm_kinetics(points, base.v_write);
  VcmParams out = base;
  out.t_switch = fit.t_switch;
  out.kinetics_v0 = fit.kinetics_v0;
  return out;
}

Time measure_switching_time(const VcmParams& params, Voltage v,
                            Time resolution) {
  MEMCIM_CHECK(resolution.value() > 0.0);
  VcmDevice device(params, 0.0);
  MEMCIM_CHECK_MSG(device.switching_rate(v) > 0.0,
                   "bias below threshold: the device never switches");
  Time elapsed{0.0};
  // Cap at 10^7 steps — far beyond any calibrated regime.
  for (int step = 0; step < 10'000'000 && device.state() < 0.999; ++step) {
    device.apply(v, resolution);
    elapsed += resolution;
  }
  MEMCIM_CHECK_MSG(device.state() >= 0.999,
                   "device did not switch within the measurement cap");
  return elapsed;
}

}  // namespace memcim
