// Linear ion-drift memristor (Strukov et al., Nature 2008 — paper
// ref [39]) with the standard window functions that bound dopant
// drift at the device edges.
//
// The device is modelled as two resistors in series: a doped region of
// normalized width x with resistance x·R_on and an undoped region with
// (1−x)·R_off.  The state equation is
//
//    dx/dt = (μ_v · R_on / D²) · i(t) · f(x)
//
// where f is the window function.  The paper's Section IV.A notes that
// "simple memristor models fail to predict the correct device
// behaviour" — this model is included both as the canonical baseline
// and to let bench_ablation_windows demonstrate exactly that claim
// against the nonlinear-kinetics VCM/ECM models.
#pragma once

#include "device/device.h"

namespace memcim {

/// Window function selection for the ion-drift state equation.
enum class WindowFunction {
  kNone,         ///< f(x) = 1 (state clamped to [0,1] after the step)
  kJoglekar,     ///< f(x) = 1 − (2x−1)^(2p)
  kBiolek,       ///< f(x) = 1 − (x − step(−i))^(2p); kills boundary lock-up
  kProdromakis,  ///< f(x) = j·(1 − ((x−0.5)² + 0.75)^p)
};

[[nodiscard]] const char* to_string(WindowFunction w);

struct LinearIonDriftParams {
  Resistance r_on{100.0};      ///< fully doped (LRS) resistance
  Resistance r_off{16'000.0};  ///< fully undoped (HRS) resistance
  Length depth{10e-9};         ///< film thickness D
  /// Ion mobility μ_v in m²/(s·V); 1e-14 is the TiO₂ value used by
  /// Strukov et al.
  double mobility = 1e-14;
  WindowFunction window = WindowFunction::kJoglekar;
  double window_p = 1.0;  ///< window exponent p
  double window_j = 1.0;  ///< Prodromakis scale j
};

class LinearIonDriftDevice final : public Device {
 public:
  explicit LinearIonDriftDevice(const LinearIonDriftParams& params,
                                double initial_state = 0.0);

  [[nodiscard]] Current current(Voltage v) const override;
  void apply(Voltage v, Time dt) override;
  [[nodiscard]] double state() const override { return x_; }
  void set_state(double x) override;
  [[nodiscard]] std::unique_ptr<Device> clone() const override;

  [[nodiscard]] const LinearIonDriftParams& params() const { return params_; }

  /// Total device resistance at the present state.
  [[nodiscard]] Resistance resistance() const;

  /// Window value f(x) for current-direction `current_sign` (Biolek's
  /// window depends on it); exposed for tests and the window ablation.
  [[nodiscard]] double window_value(double x, double current_sign) const;

 private:
  LinearIonDriftParams params_;
  double x_;
};

}  // namespace memcim
