#include "device/pcm.h"

#include <cmath>

#include "common/error.h"

namespace memcim {

PcmDevice::PcmDevice(const PcmParams& params, double initial_state)
    : params_(params), x_(clamp_state(initial_state)) {
  MEMCIM_CHECK_MSG(params_.g_on.value() > params_.g_off.value() &&
                       params_.g_off.value() > 0.0,
                   "require G_on > G_off > 0");
  MEMCIM_CHECK(params_.v_ovonic.value() > 0.0);
  MEMCIM_CHECK_MSG(params_.p_melt.value() > params_.p_crystallize.value() &&
                       params_.p_crystallize.value() > 0.0,
                   "require P_melt > P_crystallize > 0");
  MEMCIM_CHECK(params_.t_set.value() > 0.0 && params_.t_reset.value() > 0.0);
  MEMCIM_CHECK(params_.drift_nu >= 0.0 && params_.drift_t0.value() > 0.0);
  age_ = params_.drift_t0;
}

double PcmDevice::drifted_off_conductance() const {
  // Amorphous conductance decays with age: G = g_off·(age/t₀)^(−ν).
  const double ratio = age_.value() / params_.drift_t0.value();
  return params_.g_off.value() * std::pow(ratio, -params_.drift_nu);
}

Conductance PcmDevice::effective_conductance(Voltage v) const {
  const double g_amorphous = drifted_off_conductance();
  double g = g_amorphous + (params_.g_on.value() - g_amorphous) * x_;
  // Ovonic threshold switching: above |V_ov| the amorphous fraction
  // conducts electronically (both polarities — PCM is unipolar).
  if (std::abs(v.value()) >= params_.v_ovonic.value())
    g = params_.g_on.value();
  return Conductance(g);
}

Current PcmDevice::current(Voltage v) const {
  return effective_conductance(v) * v;
}

void PcmDevice::apply(Voltage v, Time dt) {
  MEMCIM_CHECK(dt.value() >= 0.0);
  const Current i = current(v);
  const double x_before = x_;
  const Power p = abs(v * i);

  if (p >= params_.p_melt) {
    // Melt: amorphize on the quench timescale; the new amorphous phase
    // is young (drift clock restarts).
    x_ = clamp_state(x_ - dt.value() / params_.t_reset.value());
    age_ = params_.drift_t0;
  } else if (p >= params_.p_crystallize) {
    // Crystallization zone: anneal toward LRS.
    x_ = clamp_state(x_ + dt.value() / params_.t_set.value());
  } else {
    // Sub-heating: the amorphous phase just ages (drift).
    age_ += dt;
  }
  record_step(v, i, dt, x_before, x_);
}

void PcmDevice::set_state(double x) {
  x_ = clamp_state(x);
  age_ = params_.drift_t0;
}

std::unique_ptr<Device> PcmDevice::clone() const {
  return std::make_unique<PcmDevice>(*this);
}

}  // namespace memcim
