// Device non-idealities: device-to-device and cycle-to-cycle variation,
// endurance wear-out, and retention drift.
//
// Implemented as a decorator over any `Device` so every model (ion
// drift, VCM, ECM, CRS stack) gains the same non-ideality vocabulary.
// The paper leans on memristor endurance/retention numbers (Section
// IV.A: >1e12 cycles VCM, >1e10 ECM, >10 y retention) — this module is
// what lets bench_ablation_variability probe how far those properties
// can degrade before the architecture's read margin collapses.
#pragma once

#include <memory>

#include "common/rng.h"
#include "device/device.h"

namespace memcim {

struct VariabilityParams {
  /// σ of ln(G) applied once at construction to both G_on and G_off
  /// (device-to-device spread).  0 disables.
  double sigma_d2d = 0.0;
  /// σ of ln(G) re-drawn after every switching event (cycle-to-cycle).
  double sigma_c2c = 0.0;
  /// Device fails stuck-at after this many switching events (0 = ∞).
  std::uint64_t endurance_cycles = 0;
  /// If true the endurance failure is stuck-at-LRS, else stuck-at-HRS.
  bool fail_to_lrs = true;
  /// Retention: state relaxes toward 0.5 with this time constant under
  /// zero bias (0 = perfect retention).
  Time retention_tau{0.0};
};

/// A `Device` wrapper that perturbs the wrapped device's observable
/// conductance and injects wear-out and drift.
class VariableDevice final : public Device {
 public:
  VariableDevice(std::unique_ptr<Device> base, const VariabilityParams& params,
                 Rng rng);

  VariableDevice(const VariableDevice& other);
  VariableDevice& operator=(const VariableDevice& other);

  [[nodiscard]] Current current(Voltage v) const override;
  void apply(Voltage v, Time dt) override;
  [[nodiscard]] double state() const override;
  void set_state(double x) override;
  [[nodiscard]] std::unique_ptr<Device> clone() const override;

  [[nodiscard]] bool failed() const { return failed_; }
  [[nodiscard]] const Device& base() const { return *base_; }

  /// Multiplicative conductance perturbation currently in force.
  [[nodiscard]] double gain() const { return d2d_gain_ * c2c_gain_; }

 private:
  void maybe_wear_out();

  std::unique_ptr<Device> base_;
  VariabilityParams params_;
  Rng rng_;
  double d2d_gain_ = 1.0;
  double c2c_gain_ = 1.0;
  std::uint64_t last_switch_count_ = 0;
  bool failed_ = false;
};

}  // namespace memcim
