#include "device/crs.h"

#include <cmath>

#include "common/error.h"
#include "telemetry/telemetry.h"

namespace memcim {

using namespace memcim::literals;

namespace {

/// Process-wide CrsCell tallies.  Energy is accumulated as integer
/// attojoules so the cross-layer energy metric is an exact u64 sum
/// (thread-count deterministic), matching the per-cell double book.
struct CellMetrics {
  telemetry::Counter& pulses;
  telemetry::Counter& transitions;
  telemetry::Counter& energy_aj;
  telemetry::Counter& stuck_absorbed;
  CellMetrics()
      : pulses(telemetry::Registry::global().counter("crs_cell.pulses")),
        transitions(
            telemetry::Registry::global().counter("crs_cell.transitions")),
        energy_aj(telemetry::Registry::global().counter(
            "crs_cell.switch_energy_aj")),
        stuck_absorbed(telemetry::Registry::global().counter(
            "crs_cell.stuck_absorbed")) {}
};

CellMetrics& cell_metrics() {
  static CellMetrics m;
  return m;
}

}  // namespace

const char* to_string(CrsState s) {
  switch (s) {
    case CrsState::kZero: return "0";
    case CrsState::kOne: return "1";
    case CrsState::kOn: return "ON";
    case CrsState::kUndefined: return "undef";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// CrsDevice
// ---------------------------------------------------------------------------

CrsDevice::CrsDevice(std::unique_ptr<Device> a, std::unique_ptr<Device> b)
    : a_(std::move(a)), b_(std::move(b)) {
  MEMCIM_CHECK_MSG(a_ && b_, "CrsDevice needs two constituent devices");
}

CrsDevice::CrsDevice(const CrsDevice& other)
    : Device(other), a_(other.a_->clone()), b_(other.b_->clone()) {}

CrsDevice& CrsDevice::operator=(const CrsDevice& other) {
  if (this != &other) {
    Device::operator=(other);
    a_ = other.a_->clone();
    b_ = other.b_->clone();
  }
  return *this;
}

Voltage CrsDevice::split_voltage(Voltage v) const {
  // Solve I_A(v_a) = I_B(v - v_a) for the internal node.  B is mounted
  // anti-serially; with odd instantaneous I–V characteristics the stack
  // current through B equals I_B evaluated at the stack-frame drop.
  // f(v_a) = I_A(v_a) − I_B(v − v_a) is strictly increasing → bisection.
  double lo = std::min(0.0, v.value());
  double hi = std::max(0.0, v.value());
  auto f = [&](double va) {
    return a_->current(Voltage(va)).value() -
           b_->current(Voltage(v.value() - va)).value();
  };
  for (int it = 0; it < 200; ++it) {
    const double mid = 0.5 * (lo + hi);
    if (f(mid) <= 0.0)
      lo = mid;
    else
      hi = mid;
  }
  return Voltage(0.5 * (lo + hi));
}

Current CrsDevice::current(Voltage v) const {
  const Voltage va = split_voltage(v);
  return a_->current(va);
}

void CrsDevice::apply(Voltage v, Time dt) {
  const Voltage va = split_voltage(v);
  const Voltage vb_stack = v - va;
  const Current i = a_->current(va);
  const double x_before = state();
  a_->apply(va, dt);
  // In B's own frame the anti-serial mounting flips the sign.
  b_->apply(-vb_stack, dt);
  record_step(v, i, dt, x_before, state());
}

double CrsDevice::state() const {
  return std::min(a_->state(), b_->state());
}

void CrsDevice::set_state(double x) {
  a_->set_state(x);
  b_->set_state(x);
}

std::unique_ptr<Device> CrsDevice::clone() const {
  return std::make_unique<CrsDevice>(*this);
}

CrsState CrsDevice::logic_state() const {
  const bool a_lrs = a_->is_lrs();
  const bool b_lrs = b_->is_lrs();
  if (a_lrs && b_lrs) return CrsState::kOn;
  if (a_lrs && !b_lrs) return CrsState::kOne;
  if (!a_lrs && b_lrs) return CrsState::kZero;
  return CrsState::kUndefined;
}

void CrsDevice::force_state(CrsState s) {
  switch (s) {
    case CrsState::kZero:
      a_->set_state(0.0);
      b_->set_state(1.0);
      break;
    case CrsState::kOne:
      a_->set_state(1.0);
      b_->set_state(0.0);
      break;
    case CrsState::kOn:
      a_->set_state(1.0);
      b_->set_state(1.0);
      break;
    case CrsState::kUndefined:
      a_->set_state(0.0);
      b_->set_state(0.0);
      break;
  }
}

std::vector<IvPoint> sweep_iv(CrsDevice& crs, Voltage v_max,
                              std::size_t steps_per_leg, Time dwell) {
  MEMCIM_CHECK(steps_per_leg >= 2);
  std::vector<IvPoint> trace;
  trace.reserve(4 * steps_per_leg);
  auto leg = [&](double from, double to) {
    for (std::size_t k = 0; k < steps_per_leg; ++k) {
      const double frac =
          static_cast<double>(k) / static_cast<double>(steps_per_leg - 1);
      const Voltage v(from + (to - from) * frac);
      crs.apply(v, dwell);
      trace.push_back({v, crs.current(v), crs.logic_state()});
    }
  };
  leg(0.0, v_max.value());
  leg(v_max.value(), 0.0);
  leg(0.0, -v_max.value());
  leg(-v_max.value(), 0.0);
  return trace;
}

// ---------------------------------------------------------------------------
// CrsCell
// ---------------------------------------------------------------------------

CrsCell::CrsCell(const CrsCellParams& params, CrsState initial)
    : params_(params), state_(initial) {
  MEMCIM_CHECK_MSG(params_.v_th1.value() > 0.0 &&
                       params_.v_th2.value() > params_.v_th1.value(),
                   "require 0 < v_th1 < v_th2");
  MEMCIM_CHECK_MSG(params_.v_th3.value() < 0.0 &&
                       params_.v_th4.value() < params_.v_th3.value(),
                   "require v_th4 < v_th3 < 0");
  MEMCIM_CHECK_MSG(params_.v_read.value() > params_.v_th1.value() &&
                       params_.v_read.value() < params_.v_th2.value(),
                   "v_read must lie in (v_th1, v_th2)");
}

void CrsCell::force_stuck(CrsState pinned) {
  stuck_ = pinned;
  state_ = pinned;
}

void CrsCell::clear_stuck() { stuck_.reset(); }

void CrsCell::set_state(CrsState s) {
  if (stuck_) return;  // a pinned device ignores modelling fixups too
  state_ = s;
}

void CrsCell::transition_to(CrsState next) {
  if (stuck_) {
    // A stuck device absorbs the pulse unchanged: no transition and —
    // consistently with energy_ below — no switching energy.  The
    // telemetry branch sits on this cold path only.
    if (next != state_ && telemetry::enabled())
      cell_metrics().stuck_absorbed.add(1);
    return;
  }
  if (next != state_) {
    state_ = next;
    energy_ += params_.e_per_switch;
    ++transitions_;
  }
}

void CrsCell::apply_pulse(Voltage v) {
  ++pulses_;
  const std::uint64_t transitions_before = transitions_;
  step_state(v.value());
  // One telemetry sync per pulse — the whole disabled-mode cost of the
  // cell hot path is this single predictable branch.
  if (telemetry::enabled()) {
    CellMetrics& m = cell_metrics();
    m.pulses.add(1);
    if (transitions_ != transitions_before) {
      m.transitions.add(1);
      m.energy_aj.add(static_cast<std::uint64_t>(
          std::llround(params_.e_per_switch.value() * 1e18)));
    }
  }
}

void CrsCell::step_state(double vv) {
  // Positive branch: '0' --(>vth1)--> ON --(>vth2)--> '1'.
  if (vv >= params_.v_th2.value()) {
    if (state_ == CrsState::kZero || state_ == CrsState::kOn)
      transition_to(CrsState::kOne);
    return;
  }
  if (vv >= params_.v_th1.value()) {
    if (state_ == CrsState::kZero) transition_to(CrsState::kOn);
    return;
  }
  // Negative branch: '1' --(<vth3)--> ON --(<vth4)--> '0'.
  if (vv <= params_.v_th4.value()) {
    if (state_ == CrsState::kOne || state_ == CrsState::kOn)
      transition_to(CrsState::kZero);
    return;
  }
  if (vv <= params_.v_th3.value()) {
    if (state_ == CrsState::kOne) transition_to(CrsState::kOn);
    return;
  }
  // |v| below both first thresholds: no state change — this is exactly
  // why CRS arrays are sneak-path free.
}

void CrsCell::write(bool bit) {
  apply_pulse(bit ? params_.v_th2 * 1.1 : params_.v_th4 * 1.1);
}

CrsReadResult CrsCell::read() {
  const CrsState before = state_;
  apply_pulse(params_.v_read);
  CrsReadResult r;
  r.destructive = (before == CrsState::kZero && state_ == CrsState::kOn);
  r.bit = !r.destructive && before == CrsState::kOne;
  if (r.destructive || before == CrsState::kOn) {
    // ON cell at v_read conducts through two LRS devices in series.
    r.spike = params_.v_read / (params_.r_lrs * 2.0);
  }
  return r;
}

CrsReadResult CrsCell::read_with_writeback() {
  CrsReadResult r = read();
  if (r.destructive) write(false);
  return r;
}

}  // namespace memcim
