// Electrochemical-metallization (ECM / CBRAM) device model — the
// Ag/Cu-filament cell of the paper's Section IV.A (F = 10 nm [63],
// < 10 ns switching [64], > 1e10 cycles [65], Ag-chalcogenide retention
// [67]).
//
// Differences from the VCM model that the paper calls out and that we
// reproduce:
//
//  * the state variable is the *filament length* (paper: "the filament
//    length can be considered the state variable [68]");
//  * conductance depends exponentially on the residual tunnelling gap:
//    G(x) = G_off·(G_on/G_off)^x, not a linear mix;
//  * growth follows Butler–Volmer-like sinh kinetics in the overdrive
//    ("the strong non-linearity of the switching kinetics must be
//    reflected by the model"), and dissolution (RESET) is slower than
//    growth by an asymmetry factor.
#pragma once

#include "device/device.h"

namespace memcim {

struct EcmParams {
  Conductance g_on{1.0 / 25e3};    ///< filament fully formed (R_on = 25 kΩ)
  Conductance g_off{1.0 / 100e6};  ///< filament dissolved (R_off = 100 MΩ)
  Voltage v_th_set{0.25};          ///< nucleation threshold (positive bias)
  Voltage v_th_reset{-0.15};       ///< dissolution threshold (negative bias)
  Voltage v_write{1.0};            ///< nominal write amplitude
  Time t_switch{10e-9};            ///< full SET at +v_write (10 ns [64])
  Voltage kinetics_v0{0.1};        ///< sinh kinetics scale
  double reset_asymmetry = 3.0;    ///< RESET is this factor slower than SET
};

class EcmDevice final : public Device {
 public:
  explicit EcmDevice(const EcmParams& params, double initial_state = 0.0);

  [[nodiscard]] Current current(Voltage v) const override;
  void apply(Voltage v, Time dt) override;
  [[nodiscard]] double state() const override { return x_; }
  void set_state(double x) override;
  [[nodiscard]] std::unique_ptr<Device> clone() const override;

  [[nodiscard]] const EcmParams& params() const { return params_; }

  /// Exponential gap conductance G(x) = G_off·(G_on/G_off)^x.
  [[nodiscard]] Conductance state_conductance() const;

  /// Signed filament growth rate dx/dt (1/s) at bias `v`.
  [[nodiscard]] double growth_rate(Voltage v) const;

 private:
  EcmParams params_;
  double x_;  ///< normalized filament length; 1 = contact (LRS)
};

}  // namespace memcim
