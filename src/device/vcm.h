// Valence-change-memory (VCM) device model — the TaOx/HfOx-class
// bipolar ReRAM cell the paper cites as the fastest, highest-endurance
// memristor option (Section IV.A: F = 10 nm [62], < 200 ps switching
// [42], > 1e12 cycles endurance [65]).
//
// The model captures the two properties that matter at architecture
// level and that the simple ion-drift model misses:
//
//  1. *Threshold switching with exponential voltage-time kinetics*
//     ("voltage-time dilemma"): below |V_th| the state is effectively
//     frozen; above it the switching rate grows exponentially with
//     overdrive.  This is what makes V/2 bias schemes possible — a
//     half-selected cell disturbs ~exp(V_w/2v₀) times slower than the
//     selected cell switches.
//
//  2. Optional *I–V nonlinearity* (current-controlled negative
//     differential-resistance devices, paper ref [79]):
//     I = G(x)·sinh(κV)/κ, which suppresses sneak currents at the
//     half-select voltage.
#pragma once

#include "device/device.h"

namespace memcim {

struct VcmParams {
  Conductance g_on{1.0 / 10e3};    ///< LRS conductance (R_on = 10 kΩ)
  Conductance g_off{1.0 / 10e6};   ///< HRS conductance (R_off = 10 MΩ)
  Voltage v_th_set{0.8};           ///< SET threshold (positive bias)
  Voltage v_th_reset{-0.8};        ///< RESET threshold (negative bias)
  Voltage v_write{2.0};            ///< nominal write amplitude
  Time t_switch{200e-12};          ///< full switch time at ±v_write (200 ps [42])
  /// Kinetics slope v₀: switching rate ∝ exp((|V|−|V_w|)/v₀).  Smaller
  /// v₀ = steeper voltage-time characteristic = better half-select
  /// immunity.
  Voltage kinetics_v0{0.15};
  /// I–V nonlinearity κ in 1/V; 0 = ohmic.  The chord-conductance ratio
  /// G(V_w)/G(V_w/2) ≈ 2·sinh(κV_w)/ (2·sinh(κV_w/2)·...) grows with κ.
  double nonlinearity = 0.0;
  /// Conductance shape exponent: G(x) = G_off + (G_on−G_off)·x^shape.
  /// 1 = linear mix; larger values model filamentary devices whose
  /// conductance stays near G_off until the filament nearly closes —
  /// essential for stateful (IMPLY) logic, where a half-switched output
  /// must not load the shared node.
  double conductance_shape = 1.0;
  /// Abrupt-completion threshold: if > 0, a SET that drives x past this
  /// point snaps to 1 within the same pulse (thermal/field runaway of
  /// filament formation), and symmetrically a RESET past (1−snap_x)
  /// snaps to 0.  0 disables (gradual switching).
  double snap_x = 0.0;
};

class VcmDevice final : public Device {
 public:
  explicit VcmDevice(const VcmParams& params, double initial_state = 0.0);

  [[nodiscard]] Current current(Voltage v) const override;
  void apply(Voltage v, Time dt) override;
  [[nodiscard]] double state() const override { return x_; }
  void set_state(double x) override;
  [[nodiscard]] std::unique_ptr<Device> clone() const override;

  [[nodiscard]] const VcmParams& params() const { return params_; }

  /// Linear-mix conductance G(x) = G_off + x·(G_on − G_off).
  [[nodiscard]] Conductance state_conductance() const;

  /// dx/dt (1/s, signed) at bias `v` — exposed for kinetics tests.
  [[nodiscard]] double switching_rate(Voltage v) const;

 private:
  VcmParams params_;
  double x_;
};

}  // namespace memcim
