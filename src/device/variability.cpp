#include "device/variability.h"

#include <cmath>

#include "common/error.h"

namespace memcim {

VariableDevice::VariableDevice(std::unique_ptr<Device> base,
                               const VariabilityParams& params, Rng rng)
    : base_(std::move(base)), params_(params), rng_(rng) {
  MEMCIM_CHECK(base_ != nullptr);
  MEMCIM_CHECK(params_.sigma_d2d >= 0.0 && params_.sigma_c2c >= 0.0);
  MEMCIM_CHECK(params_.retention_tau.value() >= 0.0);
  if (params_.sigma_d2d > 0.0)
    d2d_gain_ = rng_.lognormal_median(1.0, params_.sigma_d2d);
}

VariableDevice::VariableDevice(const VariableDevice& other)
    : Device(other),
      base_(other.base_->clone()),
      params_(other.params_),
      rng_(other.rng_),
      d2d_gain_(other.d2d_gain_),
      c2c_gain_(other.c2c_gain_),
      last_switch_count_(other.last_switch_count_),
      failed_(other.failed_) {}

VariableDevice& VariableDevice::operator=(const VariableDevice& other) {
  if (this != &other) {
    Device::operator=(other);
    base_ = other.base_->clone();
    params_ = other.params_;
    rng_ = other.rng_;
    d2d_gain_ = other.d2d_gain_;
    c2c_gain_ = other.c2c_gain_;
    last_switch_count_ = other.last_switch_count_;
    failed_ = other.failed_;
  }
  return *this;
}

Current VariableDevice::current(Voltage v) const {
  return base_->current(v) * gain();
}

void VariableDevice::maybe_wear_out() {
  if (params_.endurance_cycles == 0 || failed_) return;
  if (base_->switch_count() >= params_.endurance_cycles) {
    failed_ = true;
    base_->set_state(params_.fail_to_lrs ? 1.0 : 0.0);
  }
}

void VariableDevice::apply(Voltage v, Time dt) {
  const Current i_before = current(v);
  if (failed_) {
    // A worn-out device still conducts (and dissipates) but never moves.
    record_step(v, i_before, dt, base_->state(), base_->state());
    return;
  }
  const std::uint64_t switches_before = base_->switch_count();
  const double x_before = state();
  base_->apply(v, dt);
  // Retention drift toward the mid state under weak bias.
  if (params_.retention_tau.value() > 0.0 &&
      std::abs(v.value()) < 1e-3) {
    const double decay = std::exp(-dt.value() / params_.retention_tau.value());
    base_->set_state(0.5 + (base_->state() - 0.5) * decay);
  }
  if (base_->switch_count() != switches_before && params_.sigma_c2c > 0.0)
    c2c_gain_ = rng_.lognormal_median(1.0, params_.sigma_c2c);
  maybe_wear_out();
  // The wrapper keeps its own energy/switch books (the base's internal
  // accounting is not exposed through the decorator).
  record_step(v, i_before, dt, x_before, state());
}

double VariableDevice::state() const { return base_->state(); }

void VariableDevice::set_state(double x) {
  if (!failed_) base_->set_state(x);
}

std::unique_ptr<Device> VariableDevice::clone() const {
  return std::make_unique<VariableDevice>(*this);
}

}  // namespace memcim
