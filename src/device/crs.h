// Complementary Resistive Switch (CRS) — two anti-serially connected
// bipolar memristive devices (Linn et al., Nature Materials 2010 —
// paper ref [78]; Figures 3 and 4 of the paper).
//
// The CRS is the paper's flagship sneak-path solution: both logical
// states ('0' = A:HRS/B:LRS, '1' = A:LRS/B:HRS) present a high
// resistance at low bias, so unselected cells never form low-resistance
// sneak paths.  Reading applies V_read ∈ (V_th1, V_th2): a cell in '0'
// switches to the transient ON state (both LRS) and produces a current
// spike — a *destructive* read that requires write-back — while a cell
// in '1' stays quiet.
//
// Two implementations are provided:
//
//  * `CrsDevice` — circuit-level: an actual series stack of two
//    `Device` models with the internal node solved self-consistently.
//    This is what traces the Figure 4 I–V butterfly.
//  * `CrsCell`  — behavioural threshold state machine with per-event
//    energy/step accounting; the fast model used by the logic and
//    memory layers.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "device/device.h"

namespace memcim {

/// Logical state of a CRS stack.
enum class CrsState {
  kZero,      ///< A:HRS, B:LRS — stores logic 0
  kOne,       ///< A:LRS, B:HRS — stores logic 1
  kOn,        ///< both LRS — transient, after reading a '0'
  kUndefined  ///< both HRS — unformed / disturbed
};

[[nodiscard]] const char* to_string(CrsState s);

// ---------------------------------------------------------------------------
// Circuit-level CRS.
// ---------------------------------------------------------------------------
class CrsDevice final : public Device {
 public:
  /// Takes ownership of the two constituent bipolar devices.  Device B
  /// is mounted anti-serially: a positive stack voltage appears as a
  /// negative voltage in B's own frame.
  CrsDevice(std::unique_ptr<Device> a, std::unique_ptr<Device> b);

  CrsDevice(const CrsDevice& other);
  CrsDevice& operator=(const CrsDevice& other);

  [[nodiscard]] Current current(Voltage v) const override;
  void apply(Voltage v, Time dt) override;
  /// min(x_A, x_B): the stack conducts only when both devices are LRS.
  [[nodiscard]] double state() const override;
  /// Sets both constituent devices to `x` (mainly for tests).
  void set_state(double x) override;
  [[nodiscard]] std::unique_ptr<Device> clone() const override;

  /// Classify the constituent states into the CRS logical state.
  [[nodiscard]] CrsState logic_state() const;

  /// Put the stack into a given logical state directly.
  void force_state(CrsState s);

  [[nodiscard]] const Device& device_a() const { return *a_; }
  [[nodiscard]] const Device& device_b() const { return *b_; }

  /// Voltage across device A when `v` is applied to the stack (the
  /// internal-node solution); exposed for tests.
  [[nodiscard]] Voltage split_voltage(Voltage v) const;

 private:
  std::unique_ptr<Device> a_;
  std::unique_ptr<Device> b_;
};

/// One point of a quasi-static I–V sweep.
struct IvPoint {
  Voltage v;
  Current i;
  CrsState state;
};

/// Drive a triangular voltage sweep 0 → +v_max → −v_max → 0 with
/// `steps_per_leg` points per leg, holding each bias for `dwell`.
/// Returns the full trace — this regenerates Figure 4.
[[nodiscard]] std::vector<IvPoint> sweep_iv(CrsDevice& crs, Voltage v_max,
                                            std::size_t steps_per_leg,
                                            Time dwell);

// ---------------------------------------------------------------------------
// Behavioural CRS cell.
// ---------------------------------------------------------------------------
struct CrsCellParams {
  Voltage v_th1{1.0};   ///< '0' → ON (positive)
  Voltage v_th2{2.0};   ///< ON / '0' → '1' (positive)
  Voltage v_th3{-1.0};  ///< '1' → ON (negative)
  Voltage v_th4{-2.0};  ///< ON / '1' → '0' (negative)
  Voltage v_read{1.5};  ///< read amplitude, must lie in (v_th1, v_th2)
  Time t_pulse{200e-12};        ///< write/read pulse width (200 ps, Table 1)
  Energy e_per_switch{1e-15};   ///< dynamic energy per state change (1 fJ, Table 1)
  Resistance r_lrs{10e3};       ///< single-device LRS for ON-current estimate
};

/// Outcome of a CrsCell::read().
struct CrsReadResult {
  bool bit = false;          ///< stored logical value
  bool destructive = false;  ///< true iff the read moved the cell to ON
  Current spike;             ///< ON current seen by the sense amp (0 if none)
};

class CrsCell {
 public:
  explicit CrsCell(const CrsCellParams& params = {}, CrsState initial = CrsState::kZero);

  [[nodiscard]] CrsState state() const { return state_; }
  [[nodiscard]] const CrsCellParams& params() const { return params_; }

  /// Apply one voltage pulse of the configured width; updates state per
  /// the threshold diagram of Figure 4.
  void apply_pulse(Voltage v);

  /// Silently place the cell in `s`: no pulse, no transition count, no
  /// switching energy.  This is the modelling fixup used when a fault
  /// hook forces a register value that never came from a real pulse
  /// (Fabric::pin); genuine writes go through write()/apply_pulse().
  /// A stuck cell ignores it, exactly like a real pulse.
  void set_state(CrsState s);

  /// Write a logical bit (single full-amplitude pulse).
  void write(bool bit);

  /// Read per the paper's protocol: pulse at +v_read; a '0' cell goes ON
  /// and spikes.  Does NOT write back — callers decide (see
  /// read_with_writeback()).
  [[nodiscard]] CrsReadResult read();

  /// Read and restore the '0' state if the read was destructive; this is
  /// the complete memory-read transaction of Section IV.B.
  [[nodiscard]] CrsReadResult read_with_writeback();

  /// Fault injection: pin the cell to `pinned` — every later pulse is
  /// absorbed without a state change (a stuck/failed device).  Pulses
  /// are still counted (the controller keeps issuing them); switching
  /// energy stops accruing because nothing switches.
  void force_stuck(CrsState pinned);
  /// Release a previously injected stuck fault; the cell keeps the
  /// pinned state but responds to pulses again.
  void clear_stuck();
  [[nodiscard]] bool stuck() const { return stuck_.has_value(); }

  /// Cumulative energy of all state changes.
  [[nodiscard]] Energy energy() const { return energy_; }
  /// Number of state transitions (endurance proxy).
  [[nodiscard]] std::uint64_t transitions() const { return transitions_; }
  /// Total pulses applied (each takes t_pulse).
  [[nodiscard]] std::uint64_t pulses() const { return pulses_; }

 private:
  void transition_to(CrsState next);
  /// Threshold ladder of Figure 4: advance state_ for one pulse of
  /// amplitude vv (no pulse/telemetry bookkeeping — apply_pulse does
  /// that once per pulse).
  void step_state(double vv);

  CrsCellParams params_;
  CrsState state_;
  std::optional<CrsState> stuck_;
  Energy energy_{0.0};
  std::uint64_t transitions_ = 0;
  std::uint64_t pulses_ = 0;
};

}  // namespace memcim
