#include "device/ecm.h"

#include <cmath>

#include "common/error.h"

namespace memcim {

EcmDevice::EcmDevice(const EcmParams& params, double initial_state)
    : params_(params), x_(clamp_state(initial_state)) {
  MEMCIM_CHECK_MSG(params_.g_on.value() > params_.g_off.value() &&
                       params_.g_off.value() > 0.0,
                   "require G_on > G_off > 0");
  MEMCIM_CHECK(params_.v_th_set.value() > 0.0);
  MEMCIM_CHECK(params_.v_th_reset.value() < 0.0);
  MEMCIM_CHECK(params_.v_write.value() >= params_.v_th_set.value());
  MEMCIM_CHECK(params_.t_switch.value() > 0.0);
  MEMCIM_CHECK(params_.kinetics_v0.value() > 0.0);
  MEMCIM_CHECK(params_.reset_asymmetry >= 1.0);
}

Conductance EcmDevice::state_conductance() const {
  const double ratio = params_.g_on.value() / params_.g_off.value();
  return Conductance(params_.g_off.value() * std::pow(ratio, x_));
}

Current EcmDevice::current(Voltage v) const { return state_conductance() * v; }

double EcmDevice::growth_rate(Voltage v) const {
  const double v0 = params_.kinetics_v0.value();
  // Normalize so that at ±v_write the magnitude is 1/t_switch (SET) or
  // 1/(asymmetry·t_switch) (RESET).
  const double sinh_at_write = std::sinh(params_.v_write.value() / v0);
  if (v.value() > params_.v_th_set.value()) {
    const double over = std::sinh(v.value() / v0) / sinh_at_write;
    return over / params_.t_switch.value();
  }
  if (v.value() < params_.v_th_reset.value()) {
    const double over = std::sinh(-v.value() / v0) / sinh_at_write;
    return -over / (params_.reset_asymmetry * params_.t_switch.value());
  }
  return 0.0;
}

void EcmDevice::apply(Voltage v, Time dt) {
  MEMCIM_CHECK(dt.value() >= 0.0);
  const Current i = current(v);
  const double x_before = x_;
  x_ = clamp_state(x_ + growth_rate(v) * dt.value());
  record_step(v, i, dt, x_before, x_);
}

void EcmDevice::set_state(double x) { x_ = clamp_state(x); }

std::unique_ptr<Device> EcmDevice::clone() const {
  return std::make_unique<EcmDevice>(*this);
}

}  // namespace memcim
