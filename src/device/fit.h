// Device-parameter calibration from measured switching data.
//
// Section IV.A reports devices by (voltage, switching-time) points —
// "a minimum switching time of < 200 ps was shown for TaOx-based VCM
// devices [42]" — and the VCM model's voltage-time characteristic is
//
//     t_sw(V) = t₀ · exp(−(V − V_w)/v₀)
//
// i.e. ln t_sw is linear in V.  fit_vcm_kinetics() recovers (t_switch,
// kinetics_v0) from ≥2 measured points by least squares in log space:
// the calibration step any real device-model user performs before
// trusting architecture numbers.
#pragma once

#include <vector>

#include "device/vcm.h"

namespace memcim {

/// One measured switching point: at bias `voltage` the device switched
/// fully in `switching_time`.
struct SwitchingPoint {
  Voltage voltage;
  Time switching_time;
};

struct VcmKineticsFit {
  Time t_switch;        ///< switching time at the nominal write voltage
  Voltage kinetics_v0;  ///< exponential slope
  double log_rmse = 0.0;  ///< residual in ln(t) space
};

/// Least-squares fit of the VCM voltage-time characteristic.  `v_write`
/// anchors the returned t_switch (the model's nominal amplitude).
/// Requires ≥2 points at distinct voltages.
[[nodiscard]] VcmKineticsFit fit_vcm_kinetics(
    const std::vector<SwitchingPoint>& points, Voltage v_write);

/// Convenience: produce a calibrated parameter set from a baseline by
/// replacing its kinetics with the fit.
[[nodiscard]] VcmParams calibrated_vcm(const VcmParams& base,
                                       const std::vector<SwitchingPoint>& points);

/// Measure a device's actual switching time at a bias by simulation
/// (time to drive x from 0 to ≥0.999), for fit round-trip validation.
[[nodiscard]] Time measure_switching_time(const VcmParams& params, Voltage v,
                                          Time resolution);

}  // namespace memcim
