#include "device/vcm.h"

#include <cmath>

#include "common/error.h"

namespace memcim {

VcmDevice::VcmDevice(const VcmParams& params, double initial_state)
    : params_(params), x_(clamp_state(initial_state)) {
  MEMCIM_CHECK_MSG(params_.g_on.value() > params_.g_off.value() &&
                       params_.g_off.value() > 0.0,
                   "require G_on > G_off > 0");
  MEMCIM_CHECK(params_.v_th_set.value() > 0.0);
  MEMCIM_CHECK(params_.v_th_reset.value() < 0.0);
  MEMCIM_CHECK(params_.v_write.value() >= params_.v_th_set.value());
  MEMCIM_CHECK(params_.t_switch.value() > 0.0);
  MEMCIM_CHECK(params_.kinetics_v0.value() > 0.0);
  MEMCIM_CHECK(params_.nonlinearity >= 0.0);
  MEMCIM_CHECK(params_.conductance_shape >= 1.0);
  MEMCIM_CHECK(params_.snap_x >= 0.0 && params_.snap_x < 0.5);
}

Conductance VcmDevice::state_conductance() const {
  const double mix = params_.conductance_shape == 1.0
                         ? x_
                         : std::pow(x_, params_.conductance_shape);
  return params_.g_off + (params_.g_on - params_.g_off) * mix;
}

Current VcmDevice::current(Voltage v) const {
  const Conductance g = state_conductance();
  if (params_.nonlinearity == 0.0) return g * v;
  // I = G·sinh(κV)/κ — odd, monotone, reduces to G·V as κ→0.
  const double kappa = params_.nonlinearity;
  return Current(g.value() * std::sinh(kappa * v.value()) / kappa);
}

double VcmDevice::switching_rate(Voltage v) const {
  const double rate_peak = 1.0 / params_.t_switch.value();
  const double v0 = params_.kinetics_v0.value();
  if (v.value() > params_.v_th_set.value()) {
    return rate_peak * std::exp((v.value() - params_.v_write.value()) / v0);
  }
  if (v.value() < params_.v_th_reset.value()) {
    // RESET: mirror of SET around zero with the same nominal amplitude.
    return -rate_peak *
           std::exp((-v.value() - params_.v_write.value()) / v0);
  }
  return 0.0;  // sub-threshold: state frozen (non-volatile storage)
}

void VcmDevice::apply(Voltage v, Time dt) {
  MEMCIM_CHECK(dt.value() >= 0.0);
  const Current i = current(v);
  const double x_before = x_;
  const double rate = switching_rate(v);
  x_ = clamp_state(x_ + rate * dt.value());
  if (params_.snap_x > 0.0) {
    // Filament runaway: once a transition reaches the snap point it
    // completes within the pulse.
    if (rate > 0.0 && x_ >= params_.snap_x)
      x_ = 1.0;
    else if (rate < 0.0 && x_ <= 1.0 - params_.snap_x)
      x_ = 0.0;
  }
  record_step(v, i, dt, x_before, x_);
}

void VcmDevice::set_state(double x) { x_ = clamp_state(x); }

std::unique_ptr<Device> VcmDevice::clone() const {
  return std::make_unique<VcmDevice>(*this);
}

}  // namespace memcim
