// Base interface for memristive device models.
//
// All models expose the same contract so crossbar circuits, stateful
// logic and the architecture layer can mix device types freely:
//
//  * `current(v)`   — instantaneous I(V) at the present internal state,
//  * `apply(v, dt)` — evolve the internal state under bias `v` for `dt`
//                     and accumulate dissipated energy,
//  * `state()`      — normalized state x ∈ [0,1]; x = 1 is the low
//                     resistive state (LRS, logic '1'), x = 0 the high
//                     resistive state (HRS, logic '0').
//
// Sign convention: positive voltage = potential of the top electrode
// above the bottom electrode; for bipolar devices positive bias drives
// SET (HRS→LRS) and negative bias drives RESET.
#pragma once

#include <cstdint>
#include <memory>

#include "common/units.h"

namespace memcim {

class Device {
 public:
  Device() = default;
  Device(const Device&) = default;
  Device& operator=(const Device&) = default;
  virtual ~Device() = default;

  /// Instantaneous current at bias `v` (state is not advanced).
  [[nodiscard]] virtual Current current(Voltage v) const = 0;

  /// Effective (chord) conductance I/V at bias `v`; at v = 0 the
  /// small-signal limit is evaluated with a 1 mV probe.
  [[nodiscard]] virtual Conductance conductance(Voltage v) const;

  /// Advance internal state by `dt` under bias `v`, accumulating the
  /// dissipated energy ∫ V·I dt (left-rectangle rule over the step).
  virtual void apply(Voltage v, Time dt) = 0;

  /// Normalized internal state in [0,1]; 1 = LRS.
  [[nodiscard]] virtual double state() const = 0;

  /// Force the internal state (e.g. initialization or test fixtures).
  virtual void set_state(double x) = 0;

  /// Deep copy preserving internal state.
  [[nodiscard]] virtual std::unique_ptr<Device> clone() const = 0;

  /// Digital view of the state with a 0.5 threshold.
  [[nodiscard]] bool is_lrs() const { return state() >= 0.5; }

  /// Energy dissipated by all apply() calls since construction/reset.
  [[nodiscard]] Energy energy_dissipated() const { return energy_; }
  void reset_energy() { energy_ = Energy(0.0); }

  /// Number of completed resistive switching events (LRS↔HRS crossings);
  /// drives endurance/wear-out modeling.
  [[nodiscard]] std::uint64_t switch_count() const { return switches_; }

 protected:
  /// Book-keeping helper for subclasses: call from apply() with the
  /// state before and after the step.
  void record_step(Voltage v, Current i, Time dt, double x_before,
                   double x_after);

 private:
  Energy energy_{0.0};
  std::uint64_t switches_ = 0;
};

/// Clamp a state value into [0,1].
[[nodiscard]] double clamp_state(double x);

}  // namespace memcim
