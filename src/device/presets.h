// Named device parameter presets calibrated to the technologies the
// paper cites in Section IV.A and Table 1.  Each factory documents the
// paper's source for its headline numbers.
#pragma once

#include <memory>

#include "device/crs.h"
#include "device/ecm.h"
#include "device/linear_ion_drift.h"
#include "device/vcm.h"

namespace memcim::presets {

/// TaOx-class VCM: < 200 ps switching (paper ref [42]), the device class
/// whose write time anchors the CIM step time of Table 1.
[[nodiscard]] VcmParams vcm_taox();

/// HfOx-class VCM at 10 nm feature size (paper ref [62]); slightly
/// slower, higher OFF/ON ratio (ref [46]).
[[nodiscard]] VcmParams vcm_hfox();

/// TaOx VCM tuned for stateful (IMPLY) logic: abrupt filamentary
/// conductance (shape 8), snap-to-completion, steep kinetics — the
/// properties Kvatinsky et al. (paper ref [58]) require so a
/// half-finished output does not collapse the shared-node drive.
[[nodiscard]] VcmParams vcm_taox_logic();

/// Ag-chalcogenide / Ag-MSQ ECM cell: < 10 ns switching (ref [64]),
/// > 1e10 cycles (ref [65]).
[[nodiscard]] EcmParams ecm_ag();

/// Strukov TiO₂ ion-drift reference device (ref [39]).
[[nodiscard]] LinearIonDriftParams ion_drift_tio2();

/// Behavioural CRS thresholds consistent with Figure 4 and the ECM pair
/// of ref [78] (Vth1 ≈ Vset, Vth2 ≈ Vset + Vreset amplitudes).
[[nodiscard]] CrsCellParams crs_cell();

/// Circuit-level CRS built from two ECM devices (the device pairing of
/// the original Linn et al. demonstration).
[[nodiscard]] std::unique_ptr<CrsDevice> make_crs_ecm();

/// Circuit-level CRS built from two VCM devices (fast TaOx variant).
[[nodiscard]] std::unique_ptr<CrsDevice> make_crs_vcm();

}  // namespace memcim::presets
