#include "device/device.h"

#include <algorithm>

namespace memcim {

using namespace memcim::literals;

Conductance Device::conductance(Voltage v) const {
  Voltage probe = v;
  if (std::abs(v.value()) < 1e-6) probe = 1.0_mV;
  return current(probe) / probe;
}

void Device::record_step(Voltage v, Current i, Time dt, double x_before,
                         double x_after) {
  energy_ += abs(v * i) * dt;
  const bool was_lrs = x_before >= 0.5;
  const bool is_lrs_now = x_after >= 0.5;
  if (was_lrs != is_lrs_now) ++switches_;
}

double clamp_state(double x) { return std::clamp(x, 0.0, 1.0); }

}  // namespace memcim
