#include "device/linear_ion_drift.h"

#include <cmath>

#include "common/error.h"

namespace memcim {

const char* to_string(WindowFunction w) {
  switch (w) {
    case WindowFunction::kNone: return "none";
    case WindowFunction::kJoglekar: return "joglekar";
    case WindowFunction::kBiolek: return "biolek";
    case WindowFunction::kProdromakis: return "prodromakis";
  }
  return "?";
}

LinearIonDriftDevice::LinearIonDriftDevice(const LinearIonDriftParams& params,
                                           double initial_state)
    : params_(params), x_(clamp_state(initial_state)) {
  MEMCIM_CHECK_MSG(params_.r_on.value() > 0.0 &&
                       params_.r_off.value() > params_.r_on.value(),
                   "require 0 < R_on < R_off");
  MEMCIM_CHECK(params_.depth.value() > 0.0 && params_.mobility > 0.0);
  MEMCIM_CHECK(params_.window_p >= 1.0 && params_.window_j > 0.0);
}

Resistance LinearIonDriftDevice::resistance() const {
  return params_.r_on * x_ + params_.r_off * (1.0 - x_);
}

Current LinearIonDriftDevice::current(Voltage v) const {
  return v / resistance();
}

double LinearIonDriftDevice::window_value(double x, double current_sign) const {
  switch (params_.window) {
    case WindowFunction::kNone:
      return 1.0;
    case WindowFunction::kJoglekar:
      return 1.0 - std::pow(2.0 * x - 1.0, 2.0 * params_.window_p);
    case WindowFunction::kBiolek: {
      // stp(−i): 1 when current flows toward RESET (x shrinking).
      const double stp = current_sign < 0.0 ? 1.0 : 0.0;
      return 1.0 - std::pow(x - stp, 2.0 * params_.window_p);
    }
    case WindowFunction::kProdromakis: {
      const double term = (x - 0.5) * (x - 0.5) + 0.75;
      return params_.window_j * (1.0 - std::pow(term, params_.window_p));
    }
  }
  return 1.0;
}

void LinearIonDriftDevice::apply(Voltage v, Time dt) {
  MEMCIM_CHECK(dt.value() >= 0.0);
  const Current i = current(v);
  const double x_before = x_;
  // dx/dt = k · i · f(x) with k = μ_v·R_on/D².
  const double k = params_.mobility * params_.r_on.value() /
                   (params_.depth.value() * params_.depth.value());
  const double f = window_value(x_, i.value() >= 0.0 ? 1.0 : -1.0);
  x_ = clamp_state(x_ + k * i.value() * f * dt.value());
  record_step(v, i, dt, x_before, x_);
}

void LinearIonDriftDevice::set_state(double x) { x_ = clamp_state(x); }

std::unique_ptr<Device> LinearIonDriftDevice::clone() const {
  return std::make_unique<LinearIonDriftDevice>(*this);
}

}  // namespace memcim
