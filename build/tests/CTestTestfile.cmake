# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_device[1]_include.cmake")
include("/root/repo/build/tests/test_crossbar[1]_include.cmake")
include("/root/repo/build/tests/test_logic[1]_include.cmake")
include("/root/repo/build/tests/test_arch[1]_include.cmake")
include("/root/repo/build/tests/test_conv[1]_include.cmake")
include("/root/repo/build/tests/test_workloads[1]_include.cmake")
include("/root/repo/build/tests/test_eval[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
