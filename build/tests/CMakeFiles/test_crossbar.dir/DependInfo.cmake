
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/crossbar/bias_test.cpp" "tests/CMakeFiles/test_crossbar.dir/crossbar/bias_test.cpp.o" "gcc" "tests/CMakeFiles/test_crossbar.dir/crossbar/bias_test.cpp.o.d"
  "/root/repo/tests/crossbar/crossbar_test.cpp" "tests/CMakeFiles/test_crossbar.dir/crossbar/crossbar_test.cpp.o" "gcc" "tests/CMakeFiles/test_crossbar.dir/crossbar/crossbar_test.cpp.o.d"
  "/root/repo/tests/crossbar/crs_memory_test.cpp" "tests/CMakeFiles/test_crossbar.dir/crossbar/crs_memory_test.cpp.o" "gcc" "tests/CMakeFiles/test_crossbar.dir/crossbar/crs_memory_test.cpp.o.d"
  "/root/repo/tests/crossbar/ecc_memory_test.cpp" "tests/CMakeFiles/test_crossbar.dir/crossbar/ecc_memory_test.cpp.o" "gcc" "tests/CMakeFiles/test_crossbar.dir/crossbar/ecc_memory_test.cpp.o.d"
  "/root/repo/tests/crossbar/multistage_read_test.cpp" "tests/CMakeFiles/test_crossbar.dir/crossbar/multistage_read_test.cpp.o" "gcc" "tests/CMakeFiles/test_crossbar.dir/crossbar/multistage_read_test.cpp.o.d"
  "/root/repo/tests/crossbar/program_verify_test.cpp" "tests/CMakeFiles/test_crossbar.dir/crossbar/program_verify_test.cpp.o" "gcc" "tests/CMakeFiles/test_crossbar.dir/crossbar/program_verify_test.cpp.o.d"
  "/root/repo/tests/crossbar/readout_test.cpp" "tests/CMakeFiles/test_crossbar.dir/crossbar/readout_test.cpp.o" "gcc" "tests/CMakeFiles/test_crossbar.dir/crossbar/readout_test.cpp.o.d"
  "/root/repo/tests/crossbar/selector_test.cpp" "tests/CMakeFiles/test_crossbar.dir/crossbar/selector_test.cpp.o" "gcc" "tests/CMakeFiles/test_crossbar.dir/crossbar/selector_test.cpp.o.d"
  "/root/repo/tests/crossbar/vmm_test.cpp" "tests/CMakeFiles/test_crossbar.dir/crossbar/vmm_test.cpp.o" "gcc" "tests/CMakeFiles/test_crossbar.dir/crossbar/vmm_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/crossbar/CMakeFiles/memcim_crossbar.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/memcim_device.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/memcim_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
