file(REMOVE_RECURSE
  "CMakeFiles/test_crossbar.dir/crossbar/bias_test.cpp.o"
  "CMakeFiles/test_crossbar.dir/crossbar/bias_test.cpp.o.d"
  "CMakeFiles/test_crossbar.dir/crossbar/crossbar_test.cpp.o"
  "CMakeFiles/test_crossbar.dir/crossbar/crossbar_test.cpp.o.d"
  "CMakeFiles/test_crossbar.dir/crossbar/crs_memory_test.cpp.o"
  "CMakeFiles/test_crossbar.dir/crossbar/crs_memory_test.cpp.o.d"
  "CMakeFiles/test_crossbar.dir/crossbar/ecc_memory_test.cpp.o"
  "CMakeFiles/test_crossbar.dir/crossbar/ecc_memory_test.cpp.o.d"
  "CMakeFiles/test_crossbar.dir/crossbar/multistage_read_test.cpp.o"
  "CMakeFiles/test_crossbar.dir/crossbar/multistage_read_test.cpp.o.d"
  "CMakeFiles/test_crossbar.dir/crossbar/program_verify_test.cpp.o"
  "CMakeFiles/test_crossbar.dir/crossbar/program_verify_test.cpp.o.d"
  "CMakeFiles/test_crossbar.dir/crossbar/readout_test.cpp.o"
  "CMakeFiles/test_crossbar.dir/crossbar/readout_test.cpp.o.d"
  "CMakeFiles/test_crossbar.dir/crossbar/selector_test.cpp.o"
  "CMakeFiles/test_crossbar.dir/crossbar/selector_test.cpp.o.d"
  "CMakeFiles/test_crossbar.dir/crossbar/vmm_test.cpp.o"
  "CMakeFiles/test_crossbar.dir/crossbar/vmm_test.cpp.o.d"
  "test_crossbar"
  "test_crossbar.pdb"
  "test_crossbar[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_crossbar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
