
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/device/crs_test.cpp" "tests/CMakeFiles/test_device.dir/device/crs_test.cpp.o" "gcc" "tests/CMakeFiles/test_device.dir/device/crs_test.cpp.o.d"
  "/root/repo/tests/device/ecm_test.cpp" "tests/CMakeFiles/test_device.dir/device/ecm_test.cpp.o" "gcc" "tests/CMakeFiles/test_device.dir/device/ecm_test.cpp.o.d"
  "/root/repo/tests/device/fit_test.cpp" "tests/CMakeFiles/test_device.dir/device/fit_test.cpp.o" "gcc" "tests/CMakeFiles/test_device.dir/device/fit_test.cpp.o.d"
  "/root/repo/tests/device/linear_ion_drift_test.cpp" "tests/CMakeFiles/test_device.dir/device/linear_ion_drift_test.cpp.o" "gcc" "tests/CMakeFiles/test_device.dir/device/linear_ion_drift_test.cpp.o.d"
  "/root/repo/tests/device/pcm_test.cpp" "tests/CMakeFiles/test_device.dir/device/pcm_test.cpp.o" "gcc" "tests/CMakeFiles/test_device.dir/device/pcm_test.cpp.o.d"
  "/root/repo/tests/device/variability_test.cpp" "tests/CMakeFiles/test_device.dir/device/variability_test.cpp.o" "gcc" "tests/CMakeFiles/test_device.dir/device/variability_test.cpp.o.d"
  "/root/repo/tests/device/vcm_test.cpp" "tests/CMakeFiles/test_device.dir/device/vcm_test.cpp.o" "gcc" "tests/CMakeFiles/test_device.dir/device/vcm_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/device/CMakeFiles/memcim_device.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/memcim_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
