
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/workloads/dna_test.cpp" "tests/CMakeFiles/test_workloads.dir/workloads/dna_test.cpp.o" "gcc" "tests/CMakeFiles/test_workloads.dir/workloads/dna_test.cpp.o.d"
  "/root/repo/tests/workloads/dna_trace_test.cpp" "tests/CMakeFiles/test_workloads.dir/workloads/dna_trace_test.cpp.o" "gcc" "tests/CMakeFiles/test_workloads.dir/workloads/dna_trace_test.cpp.o.d"
  "/root/repo/tests/workloads/parallel_add_test.cpp" "tests/CMakeFiles/test_workloads.dir/workloads/parallel_add_test.cpp.o" "gcc" "tests/CMakeFiles/test_workloads.dir/workloads/parallel_add_test.cpp.o.d"
  "/root/repo/tests/workloads/tolerant_match_test.cpp" "tests/CMakeFiles/test_workloads.dir/workloads/tolerant_match_test.cpp.o" "gcc" "tests/CMakeFiles/test_workloads.dir/workloads/tolerant_match_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workloads/CMakeFiles/memcim_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/conv/CMakeFiles/memcim_conv.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/memcim_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/logic/CMakeFiles/memcim_logic.dir/DependInfo.cmake"
  "/root/repo/build/src/crossbar/CMakeFiles/memcim_crossbar.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/memcim_device.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/memcim_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
