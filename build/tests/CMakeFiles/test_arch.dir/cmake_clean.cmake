file(REMOVE_RECURSE
  "CMakeFiles/test_arch.dir/arch/cim_machine_test.cpp.o"
  "CMakeFiles/test_arch.dir/arch/cim_machine_test.cpp.o.d"
  "CMakeFiles/test_arch.dir/arch/cim_tile_test.cpp.o"
  "CMakeFiles/test_arch.dir/arch/cim_tile_test.cpp.o.d"
  "CMakeFiles/test_arch.dir/arch/cost_model_property_test.cpp.o"
  "CMakeFiles/test_arch.dir/arch/cost_model_property_test.cpp.o.d"
  "CMakeFiles/test_arch.dir/arch/cost_model_test.cpp.o"
  "CMakeFiles/test_arch.dir/arch/cost_model_test.cpp.o.d"
  "CMakeFiles/test_arch.dir/arch/taxonomy_test.cpp.o"
  "CMakeFiles/test_arch.dir/arch/taxonomy_test.cpp.o.d"
  "test_arch"
  "test_arch.pdb"
  "test_arch[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_arch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
