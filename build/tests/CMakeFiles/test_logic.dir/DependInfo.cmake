
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/logic/adder_test.cpp" "tests/CMakeFiles/test_logic.dir/logic/adder_test.cpp.o" "gcc" "tests/CMakeFiles/test_logic.dir/logic/adder_test.cpp.o.d"
  "/root/repo/tests/logic/cam_test.cpp" "tests/CMakeFiles/test_logic.dir/logic/cam_test.cpp.o" "gcc" "tests/CMakeFiles/test_logic.dir/logic/cam_test.cpp.o.d"
  "/root/repo/tests/logic/comparator_test.cpp" "tests/CMakeFiles/test_logic.dir/logic/comparator_test.cpp.o" "gcc" "tests/CMakeFiles/test_logic.dir/logic/comparator_test.cpp.o.d"
  "/root/repo/tests/logic/cross_fabric_test.cpp" "tests/CMakeFiles/test_logic.dir/logic/cross_fabric_test.cpp.o" "gcc" "tests/CMakeFiles/test_logic.dir/logic/cross_fabric_test.cpp.o.d"
  "/root/repo/tests/logic/crs_fabric_test.cpp" "tests/CMakeFiles/test_logic.dir/logic/crs_fabric_test.cpp.o" "gcc" "tests/CMakeFiles/test_logic.dir/logic/crs_fabric_test.cpp.o.d"
  "/root/repo/tests/logic/device_fabric_test.cpp" "tests/CMakeFiles/test_logic.dir/logic/device_fabric_test.cpp.o" "gcc" "tests/CMakeFiles/test_logic.dir/logic/device_fabric_test.cpp.o.d"
  "/root/repo/tests/logic/gates_test.cpp" "tests/CMakeFiles/test_logic.dir/logic/gates_test.cpp.o" "gcc" "tests/CMakeFiles/test_logic.dir/logic/gates_test.cpp.o.d"
  "/root/repo/tests/logic/interconnect_test.cpp" "tests/CMakeFiles/test_logic.dir/logic/interconnect_test.cpp.o" "gcc" "tests/CMakeFiles/test_logic.dir/logic/interconnect_test.cpp.o.d"
  "/root/repo/tests/logic/lut_test.cpp" "tests/CMakeFiles/test_logic.dir/logic/lut_test.cpp.o" "gcc" "tests/CMakeFiles/test_logic.dir/logic/lut_test.cpp.o.d"
  "/root/repo/tests/logic/program_test.cpp" "tests/CMakeFiles/test_logic.dir/logic/program_test.cpp.o" "gcc" "tests/CMakeFiles/test_logic.dir/logic/program_test.cpp.o.d"
  "/root/repo/tests/logic/random_program_test.cpp" "tests/CMakeFiles/test_logic.dir/logic/random_program_test.cpp.o" "gcc" "tests/CMakeFiles/test_logic.dir/logic/random_program_test.cpp.o.d"
  "/root/repo/tests/logic/tc_adder_test.cpp" "tests/CMakeFiles/test_logic.dir/logic/tc_adder_test.cpp.o" "gcc" "tests/CMakeFiles/test_logic.dir/logic/tc_adder_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/logic/CMakeFiles/memcim_logic.dir/DependInfo.cmake"
  "/root/repo/build/src/crossbar/CMakeFiles/memcim_crossbar.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/memcim_device.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/memcim_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
