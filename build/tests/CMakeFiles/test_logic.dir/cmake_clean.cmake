file(REMOVE_RECURSE
  "CMakeFiles/test_logic.dir/logic/adder_test.cpp.o"
  "CMakeFiles/test_logic.dir/logic/adder_test.cpp.o.d"
  "CMakeFiles/test_logic.dir/logic/cam_test.cpp.o"
  "CMakeFiles/test_logic.dir/logic/cam_test.cpp.o.d"
  "CMakeFiles/test_logic.dir/logic/comparator_test.cpp.o"
  "CMakeFiles/test_logic.dir/logic/comparator_test.cpp.o.d"
  "CMakeFiles/test_logic.dir/logic/cross_fabric_test.cpp.o"
  "CMakeFiles/test_logic.dir/logic/cross_fabric_test.cpp.o.d"
  "CMakeFiles/test_logic.dir/logic/crs_fabric_test.cpp.o"
  "CMakeFiles/test_logic.dir/logic/crs_fabric_test.cpp.o.d"
  "CMakeFiles/test_logic.dir/logic/device_fabric_test.cpp.o"
  "CMakeFiles/test_logic.dir/logic/device_fabric_test.cpp.o.d"
  "CMakeFiles/test_logic.dir/logic/gates_test.cpp.o"
  "CMakeFiles/test_logic.dir/logic/gates_test.cpp.o.d"
  "CMakeFiles/test_logic.dir/logic/interconnect_test.cpp.o"
  "CMakeFiles/test_logic.dir/logic/interconnect_test.cpp.o.d"
  "CMakeFiles/test_logic.dir/logic/lut_test.cpp.o"
  "CMakeFiles/test_logic.dir/logic/lut_test.cpp.o.d"
  "CMakeFiles/test_logic.dir/logic/program_test.cpp.o"
  "CMakeFiles/test_logic.dir/logic/program_test.cpp.o.d"
  "CMakeFiles/test_logic.dir/logic/random_program_test.cpp.o"
  "CMakeFiles/test_logic.dir/logic/random_program_test.cpp.o.d"
  "CMakeFiles/test_logic.dir/logic/tc_adder_test.cpp.o"
  "CMakeFiles/test_logic.dir/logic/tc_adder_test.cpp.o.d"
  "test_logic"
  "test_logic.pdb"
  "test_logic[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_logic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
