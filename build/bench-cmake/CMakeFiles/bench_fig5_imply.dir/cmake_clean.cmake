file(REMOVE_RECURSE
  "../bench/bench_fig5_imply"
  "../bench/bench_fig5_imply.pdb"
  "CMakeFiles/bench_fig5_imply.dir/bench_fig5_imply.cpp.o"
  "CMakeFiles/bench_fig5_imply.dir/bench_fig5_imply.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_imply.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
