file(REMOVE_RECURSE
  "../bench/bench_solver_scaling"
  "../bench/bench_solver_scaling.pdb"
  "CMakeFiles/bench_solver_scaling.dir/bench_solver_scaling.cpp.o"
  "CMakeFiles/bench_solver_scaling.dir/bench_solver_scaling.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_solver_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
