file(REMOVE_RECURSE
  "../bench/bench_fig3_junctions"
  "../bench/bench_fig3_junctions.pdb"
  "CMakeFiles/bench_fig3_junctions.dir/bench_fig3_junctions.cpp.o"
  "CMakeFiles/bench_fig3_junctions.dir/bench_fig3_junctions.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_junctions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
