# Empty dependencies file for bench_fig3_junctions.
# This may be replaced when dependencies are built.
