# Empty dependencies file for bench_table1_assumptions.
# This may be replaced when dependencies are built.
