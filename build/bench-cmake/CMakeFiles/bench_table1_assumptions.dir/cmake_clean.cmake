file(REMOVE_RECURSE
  "../bench/bench_table1_assumptions"
  "../bench/bench_table1_assumptions.pdb"
  "CMakeFiles/bench_table1_assumptions.dir/bench_table1_assumptions.cpp.o"
  "CMakeFiles/bench_table1_assumptions.dir/bench_table1_assumptions.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_assumptions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
