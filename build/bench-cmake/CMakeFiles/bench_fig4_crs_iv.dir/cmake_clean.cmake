file(REMOVE_RECURSE
  "../bench/bench_fig4_crs_iv"
  "../bench/bench_fig4_crs_iv.pdb"
  "CMakeFiles/bench_fig4_crs_iv.dir/bench_fig4_crs_iv.cpp.o"
  "CMakeFiles/bench_fig4_crs_iv.dir/bench_fig4_crs_iv.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_crs_iv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
