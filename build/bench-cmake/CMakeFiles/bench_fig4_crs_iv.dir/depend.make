# Empty dependencies file for bench_fig4_crs_iv.
# This may be replaced when dependencies are built.
