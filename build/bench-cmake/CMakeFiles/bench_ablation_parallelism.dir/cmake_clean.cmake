file(REMOVE_RECURSE
  "../bench/bench_ablation_parallelism"
  "../bench/bench_ablation_parallelism.pdb"
  "CMakeFiles/bench_ablation_parallelism.dir/bench_ablation_parallelism.cpp.o"
  "CMakeFiles/bench_ablation_parallelism.dir/bench_ablation_parallelism.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_parallelism.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
