file(REMOVE_RECURSE
  "../bench/bench_ablation_vmm"
  "../bench/bench_ablation_vmm.pdb"
  "CMakeFiles/bench_ablation_vmm.dir/bench_ablation_vmm.cpp.o"
  "CMakeFiles/bench_ablation_vmm.dir/bench_ablation_vmm.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_vmm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
