# Empty compiler generated dependencies file for bench_ablation_vmm.
# This may be replaced when dependencies are built.
