file(REMOVE_RECURSE
  "../bench/bench_ablation_windows"
  "../bench/bench_ablation_windows.pdb"
  "CMakeFiles/bench_ablation_windows.dir/bench_ablation_windows.cpp.o"
  "CMakeFiles/bench_ablation_windows.dir/bench_ablation_windows.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_windows.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
