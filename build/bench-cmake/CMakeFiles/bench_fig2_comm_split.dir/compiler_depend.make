# Empty compiler generated dependencies file for bench_fig2_comm_split.
# This may be replaced when dependencies are built.
