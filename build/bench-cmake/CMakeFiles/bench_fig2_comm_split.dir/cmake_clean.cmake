file(REMOVE_RECURSE
  "../bench/bench_fig2_comm_split"
  "../bench/bench_fig2_comm_split.pdb"
  "CMakeFiles/bench_fig2_comm_split.dir/bench_fig2_comm_split.cpp.o"
  "CMakeFiles/bench_fig2_comm_split.dir/bench_fig2_comm_split.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_comm_split.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
