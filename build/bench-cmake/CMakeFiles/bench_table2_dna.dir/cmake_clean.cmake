file(REMOVE_RECURSE
  "../bench/bench_table2_dna"
  "../bench/bench_table2_dna.pdb"
  "CMakeFiles/bench_table2_dna.dir/bench_table2_dna.cpp.o"
  "CMakeFiles/bench_table2_dna.dir/bench_table2_dna.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_dna.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
