file(REMOVE_RECURSE
  "../bench/bench_table2_math"
  "../bench/bench_table2_math.pdb"
  "CMakeFiles/bench_table2_math.dir/bench_table2_math.cpp.o"
  "CMakeFiles/bench_table2_math.dir/bench_table2_math.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_math.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
