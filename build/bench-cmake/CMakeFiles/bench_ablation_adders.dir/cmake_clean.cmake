file(REMOVE_RECURSE
  "../bench/bench_ablation_adders"
  "../bench/bench_ablation_adders.pdb"
  "CMakeFiles/bench_ablation_adders.dir/bench_ablation_adders.cpp.o"
  "CMakeFiles/bench_ablation_adders.dir/bench_ablation_adders.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_adders.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
