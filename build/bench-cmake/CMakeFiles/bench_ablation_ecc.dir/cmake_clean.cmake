file(REMOVE_RECURSE
  "../bench/bench_ablation_ecc"
  "../bench/bench_ablation_ecc.pdb"
  "CMakeFiles/bench_ablation_ecc.dir/bench_ablation_ecc.cpp.o"
  "CMakeFiles/bench_ablation_ecc.dir/bench_ablation_ecc.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_ecc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
