# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;7;add_test;/root/repo/examples/CMakeLists.txt;10;memcim_add_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_dna_pipeline "/root/repo/build/examples/dna_pipeline")
set_tests_properties(example_dna_pipeline PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;7;add_test;/root/repo/examples/CMakeLists.txt;11;memcim_add_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_vector_adder "/root/repo/build/examples/vector_adder")
set_tests_properties(example_vector_adder PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;7;add_test;/root/repo/examples/CMakeLists.txt;12;memcim_add_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_crs_memory_explorer "/root/repo/build/examples/crs_memory_explorer")
set_tests_properties(example_crs_memory_explorer PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;7;add_test;/root/repo/examples/CMakeLists.txt;13;memcim_add_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_associative_search "/root/repo/build/examples/associative_search")
set_tests_properties(example_associative_search PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;7;add_test;/root/repo/examples/CMakeLists.txt;14;memcim_add_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_paper_report "/root/repo/build/examples/paper_report")
set_tests_properties(example_paper_report PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;7;add_test;/root/repo/examples/CMakeLists.txt;15;memcim_add_example;/root/repo/examples/CMakeLists.txt;0;")
