# Empty compiler generated dependencies file for vector_adder.
# This may be replaced when dependencies are built.
