file(REMOVE_RECURSE
  "CMakeFiles/vector_adder.dir/vector_adder.cpp.o"
  "CMakeFiles/vector_adder.dir/vector_adder.cpp.o.d"
  "vector_adder"
  "vector_adder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vector_adder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
