
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/paper_report.cpp" "examples/CMakeFiles/paper_report.dir/paper_report.cpp.o" "gcc" "examples/CMakeFiles/paper_report.dir/paper_report.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/eval/CMakeFiles/memcim_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/memcim_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/conv/CMakeFiles/memcim_conv.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/memcim_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/logic/CMakeFiles/memcim_logic.dir/DependInfo.cmake"
  "/root/repo/build/src/crossbar/CMakeFiles/memcim_crossbar.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/memcim_device.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/memcim_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
