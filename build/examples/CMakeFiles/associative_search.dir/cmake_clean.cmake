file(REMOVE_RECURSE
  "CMakeFiles/associative_search.dir/associative_search.cpp.o"
  "CMakeFiles/associative_search.dir/associative_search.cpp.o.d"
  "associative_search"
  "associative_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/associative_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
