# Empty dependencies file for associative_search.
# This may be replaced when dependencies are built.
