file(REMOVE_RECURSE
  "CMakeFiles/crs_memory_explorer.dir/crs_memory_explorer.cpp.o"
  "CMakeFiles/crs_memory_explorer.dir/crs_memory_explorer.cpp.o.d"
  "crs_memory_explorer"
  "crs_memory_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crs_memory_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
