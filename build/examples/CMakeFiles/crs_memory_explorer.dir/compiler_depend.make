# Empty compiler generated dependencies file for crs_memory_explorer.
# This may be replaced when dependencies are built.
