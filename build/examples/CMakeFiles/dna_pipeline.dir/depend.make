# Empty dependencies file for dna_pipeline.
# This may be replaced when dependencies are built.
