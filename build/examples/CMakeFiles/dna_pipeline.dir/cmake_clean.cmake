file(REMOVE_RECURSE
  "CMakeFiles/dna_pipeline.dir/dna_pipeline.cpp.o"
  "CMakeFiles/dna_pipeline.dir/dna_pipeline.cpp.o.d"
  "dna_pipeline"
  "dna_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dna_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
