file(REMOVE_RECURSE
  "CMakeFiles/memcim_device.dir/crs.cpp.o"
  "CMakeFiles/memcim_device.dir/crs.cpp.o.d"
  "CMakeFiles/memcim_device.dir/device.cpp.o"
  "CMakeFiles/memcim_device.dir/device.cpp.o.d"
  "CMakeFiles/memcim_device.dir/ecm.cpp.o"
  "CMakeFiles/memcim_device.dir/ecm.cpp.o.d"
  "CMakeFiles/memcim_device.dir/fit.cpp.o"
  "CMakeFiles/memcim_device.dir/fit.cpp.o.d"
  "CMakeFiles/memcim_device.dir/linear_ion_drift.cpp.o"
  "CMakeFiles/memcim_device.dir/linear_ion_drift.cpp.o.d"
  "CMakeFiles/memcim_device.dir/pcm.cpp.o"
  "CMakeFiles/memcim_device.dir/pcm.cpp.o.d"
  "CMakeFiles/memcim_device.dir/presets.cpp.o"
  "CMakeFiles/memcim_device.dir/presets.cpp.o.d"
  "CMakeFiles/memcim_device.dir/variability.cpp.o"
  "CMakeFiles/memcim_device.dir/variability.cpp.o.d"
  "CMakeFiles/memcim_device.dir/vcm.cpp.o"
  "CMakeFiles/memcim_device.dir/vcm.cpp.o.d"
  "libmemcim_device.a"
  "libmemcim_device.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memcim_device.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
