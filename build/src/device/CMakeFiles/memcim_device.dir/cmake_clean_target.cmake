file(REMOVE_RECURSE
  "libmemcim_device.a"
)
