# Empty dependencies file for memcim_device.
# This may be replaced when dependencies are built.
