
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/device/crs.cpp" "src/device/CMakeFiles/memcim_device.dir/crs.cpp.o" "gcc" "src/device/CMakeFiles/memcim_device.dir/crs.cpp.o.d"
  "/root/repo/src/device/device.cpp" "src/device/CMakeFiles/memcim_device.dir/device.cpp.o" "gcc" "src/device/CMakeFiles/memcim_device.dir/device.cpp.o.d"
  "/root/repo/src/device/ecm.cpp" "src/device/CMakeFiles/memcim_device.dir/ecm.cpp.o" "gcc" "src/device/CMakeFiles/memcim_device.dir/ecm.cpp.o.d"
  "/root/repo/src/device/fit.cpp" "src/device/CMakeFiles/memcim_device.dir/fit.cpp.o" "gcc" "src/device/CMakeFiles/memcim_device.dir/fit.cpp.o.d"
  "/root/repo/src/device/linear_ion_drift.cpp" "src/device/CMakeFiles/memcim_device.dir/linear_ion_drift.cpp.o" "gcc" "src/device/CMakeFiles/memcim_device.dir/linear_ion_drift.cpp.o.d"
  "/root/repo/src/device/pcm.cpp" "src/device/CMakeFiles/memcim_device.dir/pcm.cpp.o" "gcc" "src/device/CMakeFiles/memcim_device.dir/pcm.cpp.o.d"
  "/root/repo/src/device/presets.cpp" "src/device/CMakeFiles/memcim_device.dir/presets.cpp.o" "gcc" "src/device/CMakeFiles/memcim_device.dir/presets.cpp.o.d"
  "/root/repo/src/device/variability.cpp" "src/device/CMakeFiles/memcim_device.dir/variability.cpp.o" "gcc" "src/device/CMakeFiles/memcim_device.dir/variability.cpp.o.d"
  "/root/repo/src/device/vcm.cpp" "src/device/CMakeFiles/memcim_device.dir/vcm.cpp.o" "gcc" "src/device/CMakeFiles/memcim_device.dir/vcm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/memcim_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
