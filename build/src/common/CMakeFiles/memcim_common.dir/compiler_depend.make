# Empty compiler generated dependencies file for memcim_common.
# This may be replaced when dependencies are built.
