file(REMOVE_RECURSE
  "CMakeFiles/memcim_common.dir/matrix.cpp.o"
  "CMakeFiles/memcim_common.dir/matrix.cpp.o.d"
  "CMakeFiles/memcim_common.dir/rng.cpp.o"
  "CMakeFiles/memcim_common.dir/rng.cpp.o.d"
  "CMakeFiles/memcim_common.dir/sparse.cpp.o"
  "CMakeFiles/memcim_common.dir/sparse.cpp.o.d"
  "CMakeFiles/memcim_common.dir/table.cpp.o"
  "CMakeFiles/memcim_common.dir/table.cpp.o.d"
  "libmemcim_common.a"
  "libmemcim_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memcim_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
