file(REMOVE_RECURSE
  "libmemcim_common.a"
)
