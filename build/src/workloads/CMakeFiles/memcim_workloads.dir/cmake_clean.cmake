file(REMOVE_RECURSE
  "CMakeFiles/memcim_workloads.dir/dna.cpp.o"
  "CMakeFiles/memcim_workloads.dir/dna.cpp.o.d"
  "CMakeFiles/memcim_workloads.dir/parallel_add.cpp.o"
  "CMakeFiles/memcim_workloads.dir/parallel_add.cpp.o.d"
  "libmemcim_workloads.a"
  "libmemcim_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memcim_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
