file(REMOVE_RECURSE
  "libmemcim_workloads.a"
)
