# Empty dependencies file for memcim_workloads.
# This may be replaced when dependencies are built.
