file(REMOVE_RECURSE
  "CMakeFiles/memcim_eval.dir/report.cpp.o"
  "CMakeFiles/memcim_eval.dir/report.cpp.o.d"
  "CMakeFiles/memcim_eval.dir/table2.cpp.o"
  "CMakeFiles/memcim_eval.dir/table2.cpp.o.d"
  "libmemcim_eval.a"
  "libmemcim_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memcim_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
