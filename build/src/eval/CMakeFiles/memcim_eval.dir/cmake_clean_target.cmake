file(REMOVE_RECURSE
  "libmemcim_eval.a"
)
