# Empty dependencies file for memcim_eval.
# This may be replaced when dependencies are built.
