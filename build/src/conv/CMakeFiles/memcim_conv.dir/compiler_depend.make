# Empty compiler generated dependencies file for memcim_conv.
# This may be replaced when dependencies are built.
