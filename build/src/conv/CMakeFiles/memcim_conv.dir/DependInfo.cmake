
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/conv/cache.cpp" "src/conv/CMakeFiles/memcim_conv.dir/cache.cpp.o" "gcc" "src/conv/CMakeFiles/memcim_conv.dir/cache.cpp.o.d"
  "/root/repo/src/conv/cluster.cpp" "src/conv/CMakeFiles/memcim_conv.dir/cluster.cpp.o" "gcc" "src/conv/CMakeFiles/memcim_conv.dir/cluster.cpp.o.d"
  "/root/repo/src/conv/memory_trace.cpp" "src/conv/CMakeFiles/memcim_conv.dir/memory_trace.cpp.o" "gcc" "src/conv/CMakeFiles/memcim_conv.dir/memory_trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/memcim_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
