file(REMOVE_RECURSE
  "CMakeFiles/memcim_conv.dir/cache.cpp.o"
  "CMakeFiles/memcim_conv.dir/cache.cpp.o.d"
  "CMakeFiles/memcim_conv.dir/cluster.cpp.o"
  "CMakeFiles/memcim_conv.dir/cluster.cpp.o.d"
  "CMakeFiles/memcim_conv.dir/memory_trace.cpp.o"
  "CMakeFiles/memcim_conv.dir/memory_trace.cpp.o.d"
  "libmemcim_conv.a"
  "libmemcim_conv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memcim_conv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
