file(REMOVE_RECURSE
  "libmemcim_conv.a"
)
