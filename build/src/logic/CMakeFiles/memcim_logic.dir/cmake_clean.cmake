file(REMOVE_RECURSE
  "CMakeFiles/memcim_logic.dir/adder.cpp.o"
  "CMakeFiles/memcim_logic.dir/adder.cpp.o.d"
  "CMakeFiles/memcim_logic.dir/cam.cpp.o"
  "CMakeFiles/memcim_logic.dir/cam.cpp.o.d"
  "CMakeFiles/memcim_logic.dir/comparator.cpp.o"
  "CMakeFiles/memcim_logic.dir/comparator.cpp.o.d"
  "CMakeFiles/memcim_logic.dir/crs_fabric.cpp.o"
  "CMakeFiles/memcim_logic.dir/crs_fabric.cpp.o.d"
  "CMakeFiles/memcim_logic.dir/device_fabric.cpp.o"
  "CMakeFiles/memcim_logic.dir/device_fabric.cpp.o.d"
  "CMakeFiles/memcim_logic.dir/fabric.cpp.o"
  "CMakeFiles/memcim_logic.dir/fabric.cpp.o.d"
  "CMakeFiles/memcim_logic.dir/gates.cpp.o"
  "CMakeFiles/memcim_logic.dir/gates.cpp.o.d"
  "CMakeFiles/memcim_logic.dir/interconnect.cpp.o"
  "CMakeFiles/memcim_logic.dir/interconnect.cpp.o.d"
  "CMakeFiles/memcim_logic.dir/lut.cpp.o"
  "CMakeFiles/memcim_logic.dir/lut.cpp.o.d"
  "CMakeFiles/memcim_logic.dir/program.cpp.o"
  "CMakeFiles/memcim_logic.dir/program.cpp.o.d"
  "CMakeFiles/memcim_logic.dir/tc_adder.cpp.o"
  "CMakeFiles/memcim_logic.dir/tc_adder.cpp.o.d"
  "libmemcim_logic.a"
  "libmemcim_logic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memcim_logic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
