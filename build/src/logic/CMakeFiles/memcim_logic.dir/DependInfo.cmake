
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/logic/adder.cpp" "src/logic/CMakeFiles/memcim_logic.dir/adder.cpp.o" "gcc" "src/logic/CMakeFiles/memcim_logic.dir/adder.cpp.o.d"
  "/root/repo/src/logic/cam.cpp" "src/logic/CMakeFiles/memcim_logic.dir/cam.cpp.o" "gcc" "src/logic/CMakeFiles/memcim_logic.dir/cam.cpp.o.d"
  "/root/repo/src/logic/comparator.cpp" "src/logic/CMakeFiles/memcim_logic.dir/comparator.cpp.o" "gcc" "src/logic/CMakeFiles/memcim_logic.dir/comparator.cpp.o.d"
  "/root/repo/src/logic/crs_fabric.cpp" "src/logic/CMakeFiles/memcim_logic.dir/crs_fabric.cpp.o" "gcc" "src/logic/CMakeFiles/memcim_logic.dir/crs_fabric.cpp.o.d"
  "/root/repo/src/logic/device_fabric.cpp" "src/logic/CMakeFiles/memcim_logic.dir/device_fabric.cpp.o" "gcc" "src/logic/CMakeFiles/memcim_logic.dir/device_fabric.cpp.o.d"
  "/root/repo/src/logic/fabric.cpp" "src/logic/CMakeFiles/memcim_logic.dir/fabric.cpp.o" "gcc" "src/logic/CMakeFiles/memcim_logic.dir/fabric.cpp.o.d"
  "/root/repo/src/logic/gates.cpp" "src/logic/CMakeFiles/memcim_logic.dir/gates.cpp.o" "gcc" "src/logic/CMakeFiles/memcim_logic.dir/gates.cpp.o.d"
  "/root/repo/src/logic/interconnect.cpp" "src/logic/CMakeFiles/memcim_logic.dir/interconnect.cpp.o" "gcc" "src/logic/CMakeFiles/memcim_logic.dir/interconnect.cpp.o.d"
  "/root/repo/src/logic/lut.cpp" "src/logic/CMakeFiles/memcim_logic.dir/lut.cpp.o" "gcc" "src/logic/CMakeFiles/memcim_logic.dir/lut.cpp.o.d"
  "/root/repo/src/logic/program.cpp" "src/logic/CMakeFiles/memcim_logic.dir/program.cpp.o" "gcc" "src/logic/CMakeFiles/memcim_logic.dir/program.cpp.o.d"
  "/root/repo/src/logic/tc_adder.cpp" "src/logic/CMakeFiles/memcim_logic.dir/tc_adder.cpp.o" "gcc" "src/logic/CMakeFiles/memcim_logic.dir/tc_adder.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/memcim_common.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/memcim_device.dir/DependInfo.cmake"
  "/root/repo/build/src/crossbar/CMakeFiles/memcim_crossbar.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
