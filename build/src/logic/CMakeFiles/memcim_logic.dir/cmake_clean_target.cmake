file(REMOVE_RECURSE
  "libmemcim_logic.a"
)
