# Empty compiler generated dependencies file for memcim_logic.
# This may be replaced when dependencies are built.
