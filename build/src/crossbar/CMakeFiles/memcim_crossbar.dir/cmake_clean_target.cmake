file(REMOVE_RECURSE
  "libmemcim_crossbar.a"
)
