# Empty compiler generated dependencies file for memcim_crossbar.
# This may be replaced when dependencies are built.
