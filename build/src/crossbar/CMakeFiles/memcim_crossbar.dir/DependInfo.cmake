
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/crossbar/bias.cpp" "src/crossbar/CMakeFiles/memcim_crossbar.dir/bias.cpp.o" "gcc" "src/crossbar/CMakeFiles/memcim_crossbar.dir/bias.cpp.o.d"
  "/root/repo/src/crossbar/crossbar.cpp" "src/crossbar/CMakeFiles/memcim_crossbar.dir/crossbar.cpp.o" "gcc" "src/crossbar/CMakeFiles/memcim_crossbar.dir/crossbar.cpp.o.d"
  "/root/repo/src/crossbar/crs_memory.cpp" "src/crossbar/CMakeFiles/memcim_crossbar.dir/crs_memory.cpp.o" "gcc" "src/crossbar/CMakeFiles/memcim_crossbar.dir/crs_memory.cpp.o.d"
  "/root/repo/src/crossbar/ecc_memory.cpp" "src/crossbar/CMakeFiles/memcim_crossbar.dir/ecc_memory.cpp.o" "gcc" "src/crossbar/CMakeFiles/memcim_crossbar.dir/ecc_memory.cpp.o.d"
  "/root/repo/src/crossbar/readout.cpp" "src/crossbar/CMakeFiles/memcim_crossbar.dir/readout.cpp.o" "gcc" "src/crossbar/CMakeFiles/memcim_crossbar.dir/readout.cpp.o.d"
  "/root/repo/src/crossbar/selector.cpp" "src/crossbar/CMakeFiles/memcim_crossbar.dir/selector.cpp.o" "gcc" "src/crossbar/CMakeFiles/memcim_crossbar.dir/selector.cpp.o.d"
  "/root/repo/src/crossbar/vmm.cpp" "src/crossbar/CMakeFiles/memcim_crossbar.dir/vmm.cpp.o" "gcc" "src/crossbar/CMakeFiles/memcim_crossbar.dir/vmm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/memcim_common.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/memcim_device.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
