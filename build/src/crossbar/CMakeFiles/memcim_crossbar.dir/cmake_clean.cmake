file(REMOVE_RECURSE
  "CMakeFiles/memcim_crossbar.dir/bias.cpp.o"
  "CMakeFiles/memcim_crossbar.dir/bias.cpp.o.d"
  "CMakeFiles/memcim_crossbar.dir/crossbar.cpp.o"
  "CMakeFiles/memcim_crossbar.dir/crossbar.cpp.o.d"
  "CMakeFiles/memcim_crossbar.dir/crs_memory.cpp.o"
  "CMakeFiles/memcim_crossbar.dir/crs_memory.cpp.o.d"
  "CMakeFiles/memcim_crossbar.dir/ecc_memory.cpp.o"
  "CMakeFiles/memcim_crossbar.dir/ecc_memory.cpp.o.d"
  "CMakeFiles/memcim_crossbar.dir/readout.cpp.o"
  "CMakeFiles/memcim_crossbar.dir/readout.cpp.o.d"
  "CMakeFiles/memcim_crossbar.dir/selector.cpp.o"
  "CMakeFiles/memcim_crossbar.dir/selector.cpp.o.d"
  "CMakeFiles/memcim_crossbar.dir/vmm.cpp.o"
  "CMakeFiles/memcim_crossbar.dir/vmm.cpp.o.d"
  "libmemcim_crossbar.a"
  "libmemcim_crossbar.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memcim_crossbar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
