file(REMOVE_RECURSE
  "libmemcim_arch.a"
)
