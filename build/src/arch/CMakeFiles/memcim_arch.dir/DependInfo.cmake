
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/arch/cim_machine.cpp" "src/arch/CMakeFiles/memcim_arch.dir/cim_machine.cpp.o" "gcc" "src/arch/CMakeFiles/memcim_arch.dir/cim_machine.cpp.o.d"
  "/root/repo/src/arch/cim_tile.cpp" "src/arch/CMakeFiles/memcim_arch.dir/cim_tile.cpp.o" "gcc" "src/arch/CMakeFiles/memcim_arch.dir/cim_tile.cpp.o.d"
  "/root/repo/src/arch/cost_model.cpp" "src/arch/CMakeFiles/memcim_arch.dir/cost_model.cpp.o" "gcc" "src/arch/CMakeFiles/memcim_arch.dir/cost_model.cpp.o.d"
  "/root/repo/src/arch/taxonomy.cpp" "src/arch/CMakeFiles/memcim_arch.dir/taxonomy.cpp.o" "gcc" "src/arch/CMakeFiles/memcim_arch.dir/taxonomy.cpp.o.d"
  "/root/repo/src/arch/tech_params.cpp" "src/arch/CMakeFiles/memcim_arch.dir/tech_params.cpp.o" "gcc" "src/arch/CMakeFiles/memcim_arch.dir/tech_params.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/memcim_common.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/memcim_device.dir/DependInfo.cmake"
  "/root/repo/build/src/crossbar/CMakeFiles/memcim_crossbar.dir/DependInfo.cmake"
  "/root/repo/build/src/logic/CMakeFiles/memcim_logic.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
