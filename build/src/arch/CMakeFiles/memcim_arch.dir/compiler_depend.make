# Empty compiler generated dependencies file for memcim_arch.
# This may be replaced when dependencies are built.
