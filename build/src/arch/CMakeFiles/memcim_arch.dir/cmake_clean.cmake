file(REMOVE_RECURSE
  "CMakeFiles/memcim_arch.dir/cim_machine.cpp.o"
  "CMakeFiles/memcim_arch.dir/cim_machine.cpp.o.d"
  "CMakeFiles/memcim_arch.dir/cim_tile.cpp.o"
  "CMakeFiles/memcim_arch.dir/cim_tile.cpp.o.d"
  "CMakeFiles/memcim_arch.dir/cost_model.cpp.o"
  "CMakeFiles/memcim_arch.dir/cost_model.cpp.o.d"
  "CMakeFiles/memcim_arch.dir/taxonomy.cpp.o"
  "CMakeFiles/memcim_arch.dir/taxonomy.cpp.o.d"
  "CMakeFiles/memcim_arch.dir/tech_params.cpp.o"
  "CMakeFiles/memcim_arch.dir/tech_params.cpp.o.d"
  "libmemcim_arch.a"
  "libmemcim_arch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memcim_arch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
